//! Shared instance inventories used across the five domain knowledge bases.
//!
//! These play the role of the real-world value populations behind the ICQ
//! dataset's interfaces: cities, airlines (split North-American /
//! European to reproduce the paper's disjoint-instances effect for
//! `Airline` vs. `Carrier`), months, car makes, states, publishers, and so
//! on. Inventories are sized so that per-site samples of 4–10 values
//! overlap only partially between sites, as real drop-downs do.

/// US cities (flight origins/destinations, job and real-estate locations).
pub static CITIES: &[&str] = &[
    "Boston",
    "Chicago",
    "Denver",
    "Seattle",
    "Atlanta",
    "Portland",
    "Houston",
    "Phoenix",
    "Dallas",
    "Miami",
    "Austin",
    "Orlando",
    "Charlotte",
    "Detroit",
    "Memphis",
    "Baltimore",
    "Milwaukee",
    "Sacramento",
    "Tucson",
    "Fresno",
    "Omaha",
    "Raleigh",
    "Oakland",
    "Minneapolis",
    "Tulsa",
    "Cleveland",
    "Wichita",
    "Arlington",
    "Tampa",
    "Honolulu",
    "Anaheim",
    "Pittsburgh",
    "Cincinnati",
    "Toledo",
    "Greensboro",
    "Newark",
    "Buffalo",
    "Madison",
    "Norfolk",
    "Lubbock",
    "Richmond",
    "Spokane",
    "Boise",
    "Reno",
    "Savannah",
];

/// Flight-origin city pool: skews toward the major origin markets
/// (overlaps [`DESTINATION_CITIES`] but is not identical — real origin and
/// destination drop-downs list different market mixes, which is also the
/// only instance-level signal separating `From city` from `To city`).
pub static ORIGIN_CITIES: &[&str] = &[
    "Boston",
    "Chicago",
    "Denver",
    "Seattle",
    "Atlanta",
    "Portland",
    "Houston",
    "Phoenix",
    "Dallas",
    "Miami",
    "Austin",
    "Orlando",
    "Charlotte",
    "Detroit",
    "Memphis",
    "Baltimore",
    "Milwaukee",
    "Sacramento",
    "Tucson",
    "Fresno",
    "Omaha",
    "Raleigh",
    "Oakland",
    "Minneapolis",
    "Tulsa",
    "Cleveland",
    "Wichita",
    "Arlington",
    "Tampa",
    "Honolulu",
    "Anaheim",
    "Pittsburgh",
    "Cincinnati",
    "Toledo",
];

/// Flight-destination city pool (see [`ORIGIN_CITIES`]).
pub static DESTINATION_CITIES: &[&str] = &[
    "Orlando",
    "Charlotte",
    "Detroit",
    "Memphis",
    "Baltimore",
    "Milwaukee",
    "Sacramento",
    "Tucson",
    "Fresno",
    "Omaha",
    "Raleigh",
    "Oakland",
    "Minneapolis",
    "Tulsa",
    "Cleveland",
    "Wichita",
    "Arlington",
    "Tampa",
    "Honolulu",
    "Anaheim",
    "Pittsburgh",
    "Cincinnati",
    "Toledo",
    "Greensboro",
    "Newark",
    "Buffalo",
    "Madison",
    "Norfolk",
    "Lubbock",
    "Richmond",
    "Spokane",
    "Boise",
    "Reno",
    "Savannah",
];

/// Airlines listed by North-American sites (pool A for `Airline`) —
/// *mostly* North American, as in the paper. The two European carriers at
/// the tail appear under North-American spelling variants ("Ryan Air" vs.
/// "Ryanair"): no *exact* value is shared with [`AIRLINES_EU`], so labels
/// and instances alike fail to connect `Airline` with `Carrier` at
/// baseline — yet the §5 case-2 pre-filter ("at least two values, one
/// from each domain, which are very similar") admits borrowing, exactly
/// the paper's scenario.
pub static AIRLINES_NA: &[&str] = &[
    "Air Canada",
    "American",
    "Delta",
    "United",
    "Continental",
    "Northwest",
    "Southwest",
    "Alaska",
    "JetBlue",
    "America West",
    "Frontier",
    "Spirit",
    "AirTran",
    "Midwest",
    "Hawaiian",
    "WestJet",
    "Sun Country",
    "ATA",
    "Ryan Air",
    "Easy Jet",
];

/// European airlines (pool B for `Carrier` — mostly disjoint from pool A).
pub static AIRLINES_EU: &[&str] = &[
    "Aer Lingus",
    "Lufthansa",
    "Alitalia",
    "Iberia",
    "Finnair",
    "Ryanair",
    "EasyJet",
    "Swiss",
    "Austrian",
    "Olympic",
    "Sabena",
    "Virgin Atlantic",
    "British Airways",
    "Air France",
    "KLM",
    "TAP Portugal",
    "LOT Polish",
];

/// Month abbreviations (date drop-downs, like instance `Jan` of
/// `Departure date` in Fig. 1).
pub static MONTHS: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Cabin classes (instances of `Class of service`).
pub static CABIN_CLASSES: &[&str] = &[
    "Economy",
    "Business",
    "First Class",
    "Premium Economy",
    "Coach",
];

/// Trip types.
pub static TRIP_TYPES: &[&str] = &["Round trip", "One way", "Multi city"];

/// Passenger counts.
pub static PASSENGER_COUNTS: &[&str] = &["1", "2", "3", "4", "5", "6", "7", "8"];

/// Car makes.
pub static CAR_MAKES: &[&str] = &[
    "Honda",
    "Toyota",
    "Ford",
    "Chevrolet",
    "Nissan",
    "Mazda",
    "Subaru",
    "Volkswagen",
    "Dodge",
    "Jeep",
    "Buick",
    "Pontiac",
    "Saturn",
    "Acura",
    "Lexus",
    "Infiniti",
    "Volvo",
    "Saab",
    "Audi",
    "Mercury",
    "Chrysler",
    "Mitsubishi",
    "Hyundai",
    "Kia",
    "Suzuki",
    "Isuzu",
];

/// Car models.
pub static CAR_MODELS: &[&str] = &[
    "Accord", "Civic", "Camry", "Corolla", "Mustang", "Taurus", "Explorer", "Impala", "Malibu",
    "Altima", "Maxima", "Sentra", "Passat", "Jetta", "Outback", "Forester", "Wrangler", "Cherokee",
    "Durango", "Caravan", "Odyssey", "Pilot", "Sienna", "Tacoma", "Tundra", "Ranger",
];

/// Car body styles.
pub static BODY_STYLES: &[&str] = &[
    "Sedan",
    "Coupe",
    "Convertible",
    "Wagon",
    "Hatchback",
    "Pickup",
    "Van",
    "SUV",
    "Minivan",
];

/// Car colors.
pub static CAR_COLORS: &[&str] = &[
    "Black", "White", "Silver", "Red", "Blue", "Green", "Gray", "Gold", "Beige", "Maroon",
];

/// Model years.
pub static CAR_YEARS: &[&str] = &[
    "1996", "1997", "1998", "1999", "2000", "2001", "2002", "2003", "2004", "2005", "2006",
];

/// Mileage brackets.
pub static MILEAGES: &[&str] = &[
    "10000", "20000", "30000", "40000", "50000", "60000", "75000", "100000", "125000", "150000",
];

/// Car prices (USD).
pub static CAR_PRICES: &[&str] = &[
    "$2,500", "$5,000", "$7,500", "$10,000", "$12,500", "$15,000", "$17,500", "$20,000", "$25,000",
    "$30,000", "$40,000", "$50,000",
];

/// Book authors.
pub static AUTHORS: &[&str] = &[
    "Stephen King",
    "John Grisham",
    "Tom Clancy",
    "Michael Crichton",
    "Agatha Christie",
    "Isaac Asimov",
    "Ray Bradbury",
    "Toni Morrison",
    "Ernest Hemingway",
    "Mark Twain",
    "Jane Austen",
    "Charles Dickens",
    "George Orwell",
    "Kurt Vonnegut",
    "Anne Rice",
    "Danielle Steel",
    "James Patterson",
    "Dean Koontz",
    "Nora Roberts",
    "Robert Ludlum",
    "Umberto Eco",
    "Gabriel Garcia Marquez",
    "Salman Rushdie",
    "Ken Follett",
];

/// Book titles.
pub static BOOK_TITLES: &[&str] = &[
    "The Firm",
    "Jurassic Park",
    "The Shining",
    "Foundation",
    "Dune",
    "Fahrenheit 451",
    "Beloved",
    "The Old Man and the Sea",
    "Emma",
    "Great Expectations",
    "Animal Farm",
    "The Stand",
    "Misery",
    "Pet Sematary",
    "The Client",
    "The Partner",
    "Airframe",
    "Congo",
    "Timeline",
    "Sphere",
    "Hannibal",
    "Contact",
    "The Hobbit",
    "It",
];

/// Publishers.
pub static PUBLISHERS: &[&str] = &[
    "Random House",
    "Penguin",
    "HarperCollins",
    "Simon and Schuster",
    "Macmillan",
    "Scholastic",
    "Houghton Mifflin",
    "McGraw-Hill",
    "Wiley",
    "Addison-Wesley",
    "Prentice Hall",
    "Springer",
    "Oxford University Press",
    "Cambridge University Press",
    "Bantam",
    "Doubleday",
    "Vintage",
    "Knopf",
];

/// Book subjects / categories.
pub static BOOK_SUBJECTS: &[&str] = &[
    "Fiction",
    "Mystery",
    "Science Fiction",
    "Romance",
    "Biography",
    "History",
    "Travel",
    "Cooking",
    "Computers",
    "Business",
    "Children",
    "Poetry",
    "Reference",
    "Health",
    "Religion",
    "Science",
];

/// Book formats.
pub static BOOK_FORMATS: &[&str] = &[
    "Hardcover",
    "Paperback",
    "Audiobook",
    "Mass Market Paperback",
    "Library Binding",
];

/// Book prices.
pub static BOOK_PRICES: &[&str] = &[
    "$5", "$10", "$15", "$20", "$25", "$30", "$40", "$50", "$75", "$100",
];

/// Job titles.
pub static JOB_TITLES: &[&str] = &[
    "Software Engineer",
    "Accountant",
    "Registered Nurse",
    "Sales Manager",
    "Administrative Assistant",
    "Project Manager",
    "Graphic Designer",
    "Financial Analyst",
    "Marketing Director",
    "Civil Engineer",
    "Teacher",
    "Pharmacist",
    "Electrician",
    "Web Developer",
    "Database Administrator",
    "Technical Writer",
    "Paralegal",
    "Recruiter",
    "Systems Analyst",
    "Customer Service Representative",
    "Operations Manager",
    "Architect",
];

/// Job categories / industries.
pub static JOB_CATEGORIES: &[&str] = &[
    "Accounting",
    "Engineering",
    "Healthcare",
    "Education",
    "Marketing",
    "Sales",
    "Information Technology",
    "Finance",
    "Manufacturing",
    "Retail",
    "Construction",
    "Legal",
    "Hospitality",
    "Transportation",
    "Insurance",
    "Telecommunications",
    "Government",
    "Nonprofit",
];

/// Company names.
pub static COMPANIES: &[&str] = &[
    "Acme Corporation",
    "Globex",
    "Initech",
    "Umbrella Corp",
    "Stark Industries",
    "Wayne Enterprises",
    "Cyberdyne Systems",
    "Tyrell Corporation",
    "Wonka Industries",
    "Duff Brewing",
    "Sirius Cybernetics",
    "Monsters Inc",
    "Gringotts Bank",
    "Oceanic Airlines",
    "Hooli",
    "Pied Piper",
    "Vandelay Industries",
    "Dunder Mifflin",
    "Sterling Cooper",
    "Bluth Company",
];

/// Annual salaries.
pub static SALARIES: &[&str] = &[
    "$25,000", "$30,000", "$35,000", "$40,000", "$50,000", "$60,000", "$70,000", "$80,000",
    "$90,000", "$100,000", "$120,000", "$150,000",
];

/// Experience levels.
pub static EXPERIENCE_LEVELS: &[&str] = &[
    "Entry Level",
    "Mid Level",
    "Senior Level",
    "Executive",
    "Internship",
];

/// Employment types.
pub static JOB_TYPES: &[&str] = &[
    "Full Time",
    "Part Time",
    "Contract",
    "Temporary",
    "Internship",
];

/// US state names.
pub static STATES: &[&str] = &[
    "Alabama",
    "Alaska",
    "Arizona",
    "Arkansas",
    "California",
    "Colorado",
    "Connecticut",
    "Delaware",
    "Florida",
    "Georgia",
    "Hawaii",
    "Idaho",
    "Illinois",
    "Indiana",
    "Iowa",
    "Kansas",
    "Kentucky",
    "Louisiana",
    "Maine",
    "Maryland",
    "Massachusetts",
    "Michigan",
    "Minnesota",
    "Mississippi",
    "Missouri",
    "Montana",
    "Nebraska",
    "Nevada",
    "New Hampshire",
    "New Jersey",
    "New Mexico",
    "New York",
    "North Carolina",
    "North Dakota",
    "Ohio",
    "Oklahoma",
    "Oregon",
    "Pennsylvania",
    "Rhode Island",
    "South Carolina",
    "South Dakota",
    "Tennessee",
    "Texas",
    "Utah",
    "Vermont",
    "Virginia",
    "Washington",
    "West Virginia",
    "Wisconsin",
    "Wyoming",
];

/// Property types.
pub static PROPERTY_TYPES: &[&str] = &[
    "Single Family Home",
    "Condo",
    "Townhouse",
    "Multi Family",
    "Land",
    "Mobile Home",
    "Farm",
    "Duplex",
    "Apartment",
];

/// Bedroom counts.
pub static BEDROOMS: &[&str] = &["1", "2", "3", "4", "5", "6"];

/// Bathroom counts.
pub static BATHROOMS: &[&str] = &["1", "1.5", "2", "2.5", "3", "4"];

/// Home prices.
pub static HOME_PRICES: &[&str] = &[
    "$50,000",
    "$75,000",
    "$100,000",
    "$125,000",
    "$150,000",
    "$200,000",
    "$250,000",
    "$300,000",
    "$400,000",
    "$500,000",
    "$750,000",
    "$1,000,000",
];

/// Square-footage brackets.
pub static SQUARE_FEET: &[&str] = &[
    "800", "1000", "1200", "1500", "1800", "2000", "2500", "3000", "3500", "4000",
];

/// Acreage brackets.
pub static ACREAGES: &[&str] = &["0.25", "0.5", "1", "2", "5", "10", "20", "40"];

/// ZIP codes.
pub static ZIP_CODES: &[&str] = &[
    "60601", "02108", "98101", "30301", "80202", "97201", "77002", "85001", "75201", "33101",
    "73301", "32801", "28201", "48201", "38101", "21201",
];

/// Departure time windows.
pub static TIME_WINDOWS: &[&str] = &["Morning", "Afternoon", "Evening", "Night", "Anytime"];

/// Airport codes (distinct from city names so the airport concept clusters
/// separately from the city concepts).
pub static AIRPORTS: &[&str] = &[
    "ORD", "BOS", "SEA", "ATL", "DEN", "PDX", "IAH", "PHX", "DFW", "MIA", "AUS", "MCO", "CLT",
    "DTW", "MEM", "BWI", "LAX", "JFK", "SFO", "EWR",
];

/// Number-of-stops options.
pub static STOPS: &[&str] = &["Nonstop", "1 stop", "2 stops", "Any number of stops"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airline_pools_are_mostly_disjoint() {
        // No exact value is shared (baseline clustering must not bridge the
        // pools), but near-duplicate spelling variants exist ("Ryan Air" /
        // "Ryanair") so the case-2 borrow pre-filter can fire.
        let overlap = AIRLINES_NA
            .iter()
            .filter(|a| AIRLINES_EU.contains(a))
            .count();
        assert_eq!(overlap, 0, "no exact overlap allowed");
        let has_variant = AIRLINES_NA.iter().any(|a| {
            AIRLINES_EU
                .iter()
                .any(|b| a.replace(' ', "").eq_ignore_ascii_case(b))
        });
        assert!(
            has_variant,
            "spelling-variant pairs must exist for case-2 borrowing"
        );
    }

    #[test]
    fn pools_have_usable_sizes() {
        assert!(CITIES.len() >= 30);
        assert!(AIRLINES_NA.len() >= 12);
        assert!(AIRLINES_EU.len() >= 12);
        assert!(CAR_MAKES.len() >= 20);
        assert!(AUTHORS.len() >= 20);
        assert!(STATES.len() == 50);
        assert_eq!(MONTHS.len(), 12);
    }

    #[test]
    fn no_duplicates_within_pools() {
        for pool in [
            CITIES,
            AIRLINES_NA,
            AIRLINES_EU,
            CAR_MAKES,
            AUTHORS,
            PUBLISHERS,
            STATES,
        ] {
            let mut v = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len());
        }
    }
}
