//! The automobile domain.
//!
//! Surface success in the paper is dragged down by ambiguous labels like
//! `Zip` ("zip code"); the `zip` concept is text-only and has thin Web
//! coverage (`web_richness` = 0.15) to reproduce that.

use super::pools;
use super::{ConceptDef, DomainDef};

/// Automobile concepts.
pub static CONCEPTS: &[ConceptDef] = &[
    ConceptDef {
        key: "make",
        labels: &["Make", "Car make", "Vehicle make", "Manufacturer", "Brand"],
        hard_from: 3,
        control_names: &["make", "car_make", "mk"],
        instances: pools::CAR_MAKES,
        instances_alt: &[],
        frequency: 1.0,
        select_prob: 0.8,
        expect_web: true,
        web_richness: 1.0,
        confusers: &["many other brands"],
    },
    ConceptDef {
        key: "model",
        labels: &["Model", "Vehicle model", "Car model"],
        hard_from: usize::MAX,
        control_names: &["model", "car_model", "mdl"],
        instances: pools::CAR_MODELS,
        instances_alt: &[],
        frequency: 0.9,
        select_prob: 0.65,
        expect_web: true,
        web_richness: 0.9,
        confusers: &[],
    },
    ConceptDef {
        key: "price",
        labels: &["Price", "Maximum price", "Price range", "Cost"],
        hard_from: 3,
        control_names: &["price", "max_price", "price_to"],
        instances: pools::CAR_PRICES,
        instances_alt: &[],
        frequency: 0.8,
        select_prob: 0.8,
        expect_web: true,
        web_richness: 0.7,
        confusers: &[],
    },
    ConceptDef {
        key: "year",
        labels: &["Year", "Model year", "Year of make"],
        hard_from: usize::MAX,
        control_names: &["year", "model_year", "yr"],
        instances: pools::CAR_YEARS,
        instances_alt: &[],
        frequency: 0.8,
        select_prob: 0.85,
        expect_web: true,
        web_richness: 0.6,
        confusers: &[],
    },
    ConceptDef {
        key: "zip",
        labels: &["Zip", "Zip code", "Near zip code", "Postal code"],
        hard_from: 3,
        control_names: &["zip", "zipcode", "postal"],
        instances: pools::ZIP_CODES,
        instances_alt: &[],
        frequency: 0.7,
        select_prob: 0.0,
        expect_web: true,
        web_richness: 0.15,
        confusers: &["your local area"],
    },
    ConceptDef {
        key: "mileage",
        labels: &["Mileage", "Maximum mileage", "Miles", "Odometer reading"],
        hard_from: 2,
        control_names: &["mileage", "max_miles", "miles"],
        instances: pools::MILEAGES,
        instances_alt: &[],
        frequency: 0.5,
        select_prob: 0.7,
        expect_web: true,
        web_richness: 0.5,
        confusers: &[],
    },
    ConceptDef {
        key: "color",
        labels: &["Color", "Exterior color"],
        hard_from: usize::MAX,
        control_names: &["color", "ext_color"],
        instances: pools::CAR_COLORS,
        instances_alt: &[],
        frequency: 0.3,
        select_prob: 0.8,
        expect_web: true,
        web_richness: 0.8,
        confusers: &[],
    },
    ConceptDef {
        key: "body_style",
        labels: &["Body style", "Body type", "Vehicle type"],
        hard_from: usize::MAX,
        control_names: &["body", "body_style", "vtype"],
        instances: pools::BODY_STYLES,
        instances_alt: &[],
        frequency: 0.5,
        select_prob: 0.9,
        expect_web: true,
        web_richness: 0.8,
        confusers: &[],
    },
];

/// Automobile site names.
pub static SITES: &[&str] = &[
    "AutoTrader Plus", "CarSeeker", "MotorMart", "DriveTime Deals",
    "WheelsFinder", "RideQuest", "AutoBahn USA", "CarHuntr", "MotorCity Sales",
    "GearBox Autos", "TurboLot", "ChromeDeals", "EngineBay Motors",
    "PistonPoint", "AxleAuto", "TorqueTown", "CamshaftCars", "SparkPlug Autos",
    "OverdriveMotors", "RoadReady Cars",
];

/// The automobile domain definition.
pub static AUTO: DomainDef = DomainDef {
    key: "auto",
    display: "Auto",
    object: "car",
    domain_terms: &["car", "vehicle", "auto"],
    concepts: CONCEPTS,
    site_names: SITES,
    all_select_rate: 0.05,
};
