//! Dataset export and import: persist a generated benchmark to disk as the
//! HTML pages a crawler would have fetched, plus a gold-standard file, and
//! load it back through the real HTML-extraction path.
//!
//! Layout of an exported dataset directory:
//!
//! ```text
//! <dir>/
//!   manifest.tsv          # id <TAB> site <TAB> file
//!   gold.tsv              # interface_id <TAB> attr_index <TAB> control <TAB> concept
//!   interfaces/
//!     000_<site>.html
//!     001_<site>.html
//!     …
//! ```

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use webiq_html::form::extract_forms;

use crate::interface::{Dataset, Interface};

/// Errors during export/import.
#[derive(Debug)]
pub enum ExportError {
    /// Filesystem failure.
    Io(io::Error),
    /// The directory's contents do not form a valid dataset.
    Malformed(String),
}

impl From<io::Error> for ExportError {
    fn from(e: io::Error) -> Self {
        ExportError::Io(e)
    }
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "i/o error: {e}"),
            ExportError::Malformed(m) => write!(f, "malformed dataset: {m}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Io(e) => Some(e),
            ExportError::Malformed(_) => None,
        }
    }
}

/// A filesystem-safe slug of a site name.
fn slug(site: &str) -> String {
    site.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Export `ds` under `dir` (created if absent).
pub fn export(ds: &Dataset, dir: &Path) -> Result<(), ExportError> {
    let pages = dir.join("interfaces");
    fs::create_dir_all(&pages)?;

    let mut manifest = fs::File::create(dir.join("manifest.tsv"))?;
    writeln!(manifest, "# domain\t{}", ds.domain)?;
    let mut gold = fs::File::create(dir.join("gold.tsv"))?;
    for iface in &ds.interfaces {
        let file = format!("{:03}_{}.html", iface.id, slug(&iface.site));
        fs::write(pages.join(&file), iface.to_html())?;
        writeln!(manifest, "{}\t{}\t{}", iface.id, iface.site, file)?;
        for (j, a) in iface.attributes.iter().enumerate() {
            writeln!(gold, "{}\t{}\t{}\t{}", iface.id, j, a.name, a.concept)?;
        }
    }
    Ok(())
}

/// Import a dataset previously written by [`export`]. Interfaces are
/// reconstructed by parsing the HTML pages (the same path a crawler over
/// real sources runs); gold concept keys come from `gold.tsv`.
pub fn import(dir: &Path) -> Result<Dataset, ExportError> {
    let manifest = fs::read_to_string(dir.join("manifest.tsv"))?;
    let mut lines = manifest.lines();
    let header = lines
        .next()
        .ok_or_else(|| ExportError::Malformed("empty manifest".into()))?;
    let domain = header
        .strip_prefix("# domain\t")
        .ok_or_else(|| ExportError::Malformed("missing domain header".into()))?
        .to_string();

    let gold_raw = fs::read_to_string(dir.join("gold.tsv"))?;
    let mut concepts: std::collections::BTreeMap<(usize, usize), String> =
        std::collections::BTreeMap::new();
    for (n, line) in gold_raw.lines().enumerate() {
        let mut parts = line.split('\t');
        let (Some(id), Some(j), Some(_control), Some(concept)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(ExportError::Malformed(format!("gold.tsv line {}", n + 1)));
        };
        let id: usize = id
            .parse()
            .map_err(|_| ExportError::Malformed(format!("gold.tsv line {}: id", n + 1)))?;
        let j: usize = j
            .parse()
            .map_err(|_| ExportError::Malformed(format!("gold.tsv line {}: index", n + 1)))?;
        concepts.insert((id, j), concept.to_string());
    }

    let mut interfaces = Vec::new();
    for (n, line) in lines.enumerate() {
        let mut parts = line.split('\t');
        let (Some(id), Some(site), Some(file)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ExportError::Malformed(format!("manifest line {}", n + 2)));
        };
        let id: usize = id
            .parse()
            .map_err(|_| ExportError::Malformed(format!("manifest line {}: id", n + 2)))?;
        let html = fs::read_to_string(dir.join("interfaces").join(file))?;
        let forms = extract_forms(&html);
        let form = forms
            .first()
            .ok_or_else(|| ExportError::Malformed(format!("{file}: no form")))?;
        let mut iface = Interface::from_extracted(id, &domain, site, form);
        for (j, a) in iface.attributes.iter_mut().enumerate() {
            if let Some(c) = concepts.get(&(id, j)) {
                a.concept = c.clone();
            }
        }
        interfaces.push(iface);
    }
    if interfaces.is_empty() {
        return Err(ExportError::Malformed("no interfaces listed".into()));
    }
    Ok(Dataset { domain, interfaces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_domain, GenOptions};
    use crate::kb;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("webiq-export-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let def = kb::domain("auto").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let dir = tmpdir("roundtrip");
        export(&ds, &dir).expect("export");
        let back = import(&dir).expect("import");

        assert_eq!(back.domain, ds.domain);
        assert_eq!(back.interfaces.len(), ds.interfaces.len());
        for (a, b) in ds.interfaces.iter().zip(&back.interfaces) {
            assert_eq!(a.site, b.site);
            assert_eq!(a.attributes.len(), b.attributes.len());
            for (x, y) in a.attributes.iter().zip(&b.attributes) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.label, y.label);
                assert_eq!(x.instances, y.instances);
                assert_eq!(x.concept, y.concept);
            }
        }
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn gold_survives_roundtrip() {
        let def = kb::domain("book").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let dir = tmpdir("gold");
        export(&ds, &dir).expect("export");
        let back = import(&dir).expect("import");
        assert_eq!(crate::gold::gold_pairs(&ds), crate::gold::gold_pairs(&back));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn import_missing_dir_errors() {
        let err = import(Path::new("/nonexistent/webiq-dataset")).unwrap_err();
        assert!(matches!(err, ExportError::Io(_)));
    }

    #[test]
    fn import_rejects_malformed_manifest() {
        let dir = tmpdir("bad");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("manifest.tsv"), "garbage no header").expect("write");
        fs::write(dir.join("gold.tsv"), "").expect("write");
        let err = import(&dir).unwrap_err();
        assert!(matches!(err, ExportError::Malformed(_)), "{err}");
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(slug("SkyQuest Travel"), "skyquest_travel");
        assert_eq!(slug("a/b\\c:d"), "a_b_c_d");
    }
}
