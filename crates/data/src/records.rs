//! Deep-Web source construction: backend record stores for each generated
//! interface.
//!
//! Each interface is backed by records whose field values are drawn from
//! the knowledge-base pools of its attributes' concepts. Probing an
//! attribute with a well-typed value (`from = Chicago`) therefore selects
//! records, while an ill-typed value (`from = January`) selects nothing —
//! the exact discrimination Attr-Deep (§4) relies on.

use webiq_deep::{DeepSource, ParamDomain, Record, RecordStore, SourceParam};
use webiq_fault::FaultPlan;
use webiq_rng::{SliceRandom, StdRng};

use crate::generate::site_pool;
use crate::interface::Interface;
use crate::kb::DomainDef;

/// Options for record-store construction.
#[derive(Debug, Clone)]
pub struct RecordOptions {
    /// Number of backend records per source.
    pub records: usize,
    /// Seed (combined with the interface id).
    pub seed: u64,
    /// Fraction of probe submissions answered with a server error
    /// (deterministic failure injection; live 2006 sources were flaky).
    /// These failures are permanent: the draw is attempt-blind, so
    /// retrying never helps. Ignored when `fault_plan` is set.
    pub failure_rate: f64,
    /// Attempt-aware fault plan for the source. Takes precedence over
    /// `failure_rate` and enables transient faults that clear on retry.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for RecordOptions {
    fn default() -> Self {
        RecordOptions {
            records: 150,
            seed: 0xdeeb,
            failure_rate: 0.0,
            fault_plan: None,
        }
    }
}

/// Value inventory backing one attribute of one interface.
fn attribute_pool<'a>(def: &'a DomainDef, iface: &'a Interface, attr_idx: usize) -> Vec<&'a str> {
    let a = &iface.attributes[attr_idx];
    if a.has_instances() {
        return a.instances.iter().map(String::as_str).collect();
    }
    match def.concept(&a.concept) {
        Some(c) if !c.instances.is_empty() => site_pool(c, iface.id).to_vec(),
        // generic attributes (keyword, …): free-text blobs built from the
        // domain vocabulary so substring matching behaves plausibly
        _ => def.domain_terms.to_vec(),
    }
}

/// Build the simulated Deep-Web source behind `iface`.
pub fn build_deep_source(def: &DomainDef, iface: &Interface, opts: &RecordOptions) -> DeepSource {
    let mut rng =
        StdRng::seed_from_u64(opts.seed ^ (iface.id as u64).wrapping_mul(0x9e3779b97f4a7c15));

    let pools: Vec<Vec<&str>> = (0..iface.attributes.len())
        .map(|i| attribute_pool(def, iface, i))
        .collect();

    let mut store = RecordStore::default();
    for _ in 0..opts.records {
        let mut record = Record::default();
        for (a, pool) in iface.attributes.iter().zip(&pools) {
            if let Some(v) = pool.choose(&mut rng) {
                record.set(a.name.clone(), (*v).to_string());
            }
        }
        store.push(record);
    }

    let params = iface
        .attributes
        .iter()
        .map(|a| SourceParam {
            name: a.name.clone(),
            domain: if a.has_instances() {
                ParamDomain::Enumerated(a.instances.clone())
            } else {
                ParamDomain::Free
            },
            required: false,
        })
        .collect();

    let source = DeepSource::new(iface.site.clone(), params, store);
    match &opts.fault_plan {
        Some(plan) => source.with_fault_plan(plan.clone()),
        None => source.with_failure_rate(opts.failure_rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_domain, GenOptions};
    use crate::kb;
    use std::collections::BTreeMap;
    use webiq_deep::analyze_response;

    fn airfare_source() -> (DeepSource, Interface) {
        let def = kb::domain("airfare").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        // find an interface with a text-mode from_city attribute
        let iface = ds
            .interfaces
            .iter()
            .find(|i| {
                i.attributes
                    .iter()
                    .any(|a| a.concept == "from_city" && !a.has_instances())
            })
            .expect("some interface has a text from_city")
            .clone();
        (
            build_deep_source(def, &iface, &RecordOptions::default()),
            iface,
        )
    }

    fn probe(src: &DeepSource, name: &str, value: &str) -> webiq_deep::SubmissionOutcome {
        let mut params = BTreeMap::new();
        params.insert(name.to_string(), value.to_string());
        analyze_response(&src.submit(&params))
    }

    #[test]
    fn well_typed_probe_succeeds() {
        let (src, iface) = airfare_source();
        let from = iface
            .attributes
            .iter()
            .find(|a| a.concept == "from_city" && !a.has_instances())
            .expect("text from_city");
        // a popular city should appear among 150 records
        let outcome = probe(&src, &from.name, "Boston");
        assert!(outcome.is_success(), "Boston probe failed: {outcome:?}");
    }

    #[test]
    fn ill_typed_probe_fails() {
        let (src, iface) = airfare_source();
        let from = iface
            .attributes
            .iter()
            .find(|a| a.concept == "from_city" && !a.has_instances())
            .expect("text from_city");
        let outcome = probe(&src, &from.name, "Jan");
        assert!(!outcome.is_success(), "month accepted as city: {outcome:?}");
    }

    #[test]
    fn enumerated_attribute_rejects_foreign_value() {
        let def = kb::domain("airfare").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let iface = ds
            .interfaces
            .iter()
            .find(|i| {
                i.attributes
                    .iter()
                    .any(|a| a.concept == "airline" && a.has_instances())
            })
            .expect("select airline exists")
            .clone();
        let src = build_deep_source(def, &iface, &RecordOptions::default());
        let airline = iface
            .attributes
            .iter()
            .find(|a| a.concept == "airline" && a.has_instances())
            .expect("select airline");
        let outcome = probe(&src, &airline.name, "Zeppelin Airways");
        assert_eq!(outcome, webiq_deep::SubmissionOutcome::Error);
    }

    #[test]
    fn empty_submission_returns_everything() {
        let (src, _) = airfare_source();
        let page = src.submit(&BTreeMap::new());
        assert!(analyze_response(&page).is_success());
    }

    #[test]
    fn deterministic_stores() {
        let def = kb::domain("auto").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let a = build_deep_source(def, &ds.interfaces[0], &RecordOptions::default());
        let b = build_deep_source(def, &ds.interfaces[0], &RecordOptions::default());
        assert_eq!(a.record_count(), b.record_count());
        let page_a = a.submit(&BTreeMap::new());
        let page_b = b.submit(&BTreeMap::new());
        assert_eq!(page_a, page_b);
    }
}
