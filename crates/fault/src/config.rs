//! End-to-end fault/retry configuration.
//!
//! [`FaultConfig`] is what `WebIQConfig.fault` carries: the injection
//! rates a [`crate::FaultPlan`] draws from plus the knobs of the retry,
//! breaker, budget, and quota machinery. The default is fully disabled —
//! every rate zero, quota unlimited — and the resilience wrappers
//! short-circuit to plain delegation in that state, so an unconfigured
//! run is byte-identical to one built before this crate existed.

/// Configuration for the whole resilience stack.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault schedule (transient draws only; permanent
    /// faults are seed-independent by design — see [`crate::FaultPlan`]).
    pub seed: u64,
    /// Fraction of calls answered with a retryable server error.
    pub transient_rate: f64,
    /// Fraction of query keys that fail permanently (legacy draw).
    pub permanent_rate: f64,
    /// Fraction of calls that time out (retryable).
    pub timeout_rate: f64,
    /// Fraction of calls throttled by the dependency (retryable).
    pub rate_limit_rate: f64,
    /// Attempts per call including the first; 1 disables retries.
    pub max_attempts: u32,
    /// First backoff delay (virtual milliseconds).
    pub base_backoff_ms: u64,
    /// Backoff cap (virtual milliseconds).
    pub max_backoff_ms: u64,
    /// Consecutive failures that open a breaker.
    pub breaker_threshold: u32,
    /// Virtual milliseconds an open breaker waits before half-opening.
    pub breaker_cooldown_ms: u64,
    /// Retries one work item (attribute) may spend across all its calls
    /// — the Fig. 8-style query-cost budget.
    pub retry_budget: u64,
    /// Engine calls allowed per run (the 2006 Google API's daily limit);
    /// 0 = unlimited. When exhausted, Web validation degrades to
    /// statistics-only checks.
    pub daily_quota: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            transient_rate: 0.0,
            permanent_rate: 0.0,
            timeout_rate: 0.0,
            rate_limit_rate: 0.0,
            max_attempts: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 2_000,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            retry_budget: 32,
            daily_quota: 0,
        }
    }
}

impl FaultConfig {
    /// True when any machinery can observably engage: a nonzero
    /// injection rate or a finite quota.
    pub fn enabled(&self) -> bool {
        self.transient_rate > 0.0
            || self.permanent_rate > 0.0
            || self.timeout_rate > 0.0
            || self.rate_limit_rate > 0.0
            || self.daily_quota > 0
    }

    /// Convenience: a config injecting transient faults at `rate` under
    /// `seed`, everything else default.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            transient_rate: rate,
            ..FaultConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.max_attempts, 3);
        assert_eq!(cfg.daily_quota, 0);
    }

    #[test]
    fn any_rate_or_quota_enables() {
        assert!(FaultConfig::chaos(1, 0.1).enabled());
        let quota_only = FaultConfig {
            daily_quota: 100,
            ..FaultConfig::default()
        };
        assert!(quota_only.enabled());
        let timeouts = FaultConfig {
            timeout_rate: 0.2,
            ..FaultConfig::default()
        };
        assert!(timeouts.enabled());
    }
}
