//! Daily-quota tracking.
//!
//! The 2006 Google Web API allowed roughly [`GOOGLE_2006_DAILY_QUOTA`]
//! queries a day. A [`QuotaTracker`] meters a run against such a limit;
//! when it is exhausted the acquisition stack degrades Web validation
//! from PMI-based hit-count checks to statistics-only filtering instead
//! of aborting.
//!
//! The tracker is shared by every work item (one run, one API key), so
//! it is the single piece of resilience state that is *not* per-item:
//! with a finite quota and multiple workers, *which* item first observes
//! exhaustion depends on scheduling. Quota-exhaustion experiments
//! therefore run single-threaded; with the default unlimited quota the
//! tracker never denies and determinism is unaffected at any width.

use std::sync::atomic::{AtomicU64, Ordering};

/// The 2006 Google Web API's daily query allowance.
pub const GOOGLE_2006_DAILY_QUOTA: u64 = 1_000;

/// A run-wide query meter. `limit == 0` means unlimited.
#[derive(Debug)]
pub struct QuotaTracker {
    limit: u64,
    used: AtomicU64,
}

impl QuotaTracker {
    /// A tracker allowing `limit` queries (0 = unlimited).
    pub fn new(limit: u64) -> Self {
        QuotaTracker {
            limit,
            used: AtomicU64::new(0),
        }
    }

    /// Charge `n` queries; false when the allowance is spent (the
    /// charge is not applied in that case).
    pub fn try_consume(&self, n: u64) -> bool {
        if self.limit == 0 {
            self.used.fetch_add(n, Ordering::Relaxed);
            return true;
        }
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                let next = used.saturating_add(n);
                (next <= self.limit).then_some(next)
            })
            .is_ok()
    }

    /// True once a finite allowance is fully spent.
    pub fn exhausted(&self) -> bool {
        self.limit > 0 && self.used.load(Ordering::Relaxed) >= self.limit
    }

    /// Queries charged so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The configured allowance (0 = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_denies_but_still_counts() {
        let q = QuotaTracker::new(0);
        for _ in 0..100 {
            assert!(q.try_consume(5));
        }
        assert_eq!(q.used(), 500);
        assert!(!q.exhausted());
    }

    #[test]
    fn finite_quota_denies_at_the_limit() {
        let q = QuotaTracker::new(3);
        assert!(q.try_consume(1));
        assert!(q.try_consume(2));
        assert!(q.exhausted());
        assert!(!q.try_consume(1));
        assert_eq!(q.used(), 3, "denied charges must not be applied");
    }

    #[test]
    fn oversized_charge_is_denied_whole() {
        let q = QuotaTracker::new(10);
        assert!(!q.try_consume(11));
        assert_eq!(q.used(), 0);
        assert!(q.try_consume(10));
        assert!(q.exhausted());
    }

    #[test]
    fn the_historic_limit_is_what_the_paper_era_had() {
        assert_eq!(GOOGLE_2006_DAILY_QUOTA, 1_000);
        let q = QuotaTracker::new(GOOGLE_2006_DAILY_QUOTA);
        assert_eq!(q.limit(), 1_000);
    }
}
