//! Daily-quota tracking.
//!
//! The 2006 Google Web API allowed roughly [`GOOGLE_2006_DAILY_QUOTA`]
//! queries a day. A [`QuotaTracker`] meters a run against such a limit;
//! when it is exhausted the acquisition stack degrades Web validation
//! from PMI-based hit-count checks to statistics-only filtering instead
//! of aborting.
//!
//! The tracker is shared by every work item (one run, one API key), so
//! it is the single piece of resilience state that is *not* per-item:
//! with a finite quota and multiple workers, *which* item first observes
//! exhaustion depends on scheduling. Quota-exhaustion experiments
//! therefore run single-threaded; with the default unlimited quota the
//! tracker never denies and determinism is unaffected at any width.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::clock::VirtualClock;

/// The 2006 Google Web API's daily query allowance.
pub const GOOGLE_2006_DAILY_QUOTA: u64 = 1_000;

/// Virtual milliseconds in one quota day.
const DAY_MS: u64 = 86_400_000;

/// A run-wide query meter. `limit == 0` means unlimited.
#[derive(Debug)]
pub struct QuotaTracker {
    limit: u64,
    used: AtomicU64,
    day: AtomicU64,
}

impl QuotaTracker {
    /// A tracker allowing `limit` queries (0 = unlimited).
    pub fn new(limit: u64) -> Self {
        QuotaTracker {
            limit,
            used: AtomicU64::new(0),
            day: AtomicU64::new(0),
        }
    }

    /// Charge `n` queries; false when the allowance is spent (the
    /// charge is not applied in that case).
    pub fn try_consume(&self, n: u64) -> bool {
        if self.limit == 0 {
            self.used.fetch_add(n, Ordering::Relaxed);
            return true;
        }
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                let next = used.saturating_add(n);
                (next <= self.limit).then_some(next)
            })
            .is_ok()
    }

    /// True once a finite allowance is fully spent.
    pub fn exhausted(&self) -> bool {
        self.limit > 0 && self.used.load(Ordering::Relaxed) >= self.limit
    }

    /// Queries charged so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The configured allowance (0 = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Roll the meter across a day boundary on `clock`: when the
    /// virtual day index (`now_ms / 86_400_000`) has advanced past the
    /// day the meter last reset in, the allowance refreshes — the
    /// real-world API grants a fresh quota at midnight. Returns true
    /// when a rollover happened. Advancing any amount of time *within*
    /// a day never resets; crossing several midnights at once still
    /// resets only once (the quota is not banked).
    pub fn rollover(&self, clock: &VirtualClock) -> bool {
        let today = clock.now_ms() / DAY_MS;
        let last = self.day.load(Ordering::Relaxed);
        if today <= last {
            return false;
        }
        if self
            .day
            .compare_exchange(last, today, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.used.store(0, Ordering::Relaxed);
            return true;
        }
        // Another worker rolled the same boundary first; the meter is
        // already fresh.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_denies_but_still_counts() {
        let q = QuotaTracker::new(0);
        for _ in 0..100 {
            assert!(q.try_consume(5));
        }
        assert_eq!(q.used(), 500);
        assert!(!q.exhausted());
    }

    #[test]
    fn finite_quota_denies_at_the_limit() {
        let q = QuotaTracker::new(3);
        assert!(q.try_consume(1));
        assert!(q.try_consume(2));
        assert!(q.exhausted());
        assert!(!q.try_consume(1));
        assert_eq!(q.used(), 3, "denied charges must not be applied");
    }

    #[test]
    fn oversized_charge_is_denied_whole() {
        let q = QuotaTracker::new(10);
        assert!(!q.try_consume(11));
        assert_eq!(q.used(), 0);
        assert!(q.try_consume(10));
        assert!(q.exhausted());
    }

    #[test]
    fn day_boundary_rollover_refreshes_an_exhausted_quota() {
        let clock = VirtualClock::new();
        let q = QuotaTracker::new(2);
        assert!(q.try_consume(2));
        assert!(q.exhausted());
        // 23:59:59.999 — same day, no refresh.
        clock.advance_ms(DAY_MS - 1);
        assert!(!q.rollover(&clock), "rolled over before midnight");
        assert!(q.exhausted());
        // Midnight: the allowance is fresh.
        clock.advance_ms(1);
        assert!(q.rollover(&clock));
        assert!(!q.exhausted());
        assert_eq!(q.used(), 0);
        assert!(q.try_consume(2));
        assert!(q.exhausted());
    }

    #[test]
    fn rollover_within_a_day_is_a_no_op_and_quota_is_not_banked() {
        let clock = VirtualClock::new();
        let q = QuotaTracker::new(5);
        assert!(q.try_consume(3));
        clock.advance_ms(DAY_MS / 2);
        assert!(!q.rollover(&clock));
        assert_eq!(q.used(), 3, "mid-day rollover must not touch the meter");
        // Sleep through three midnights at once: one refresh, not three.
        clock.advance_ms(3 * DAY_MS);
        assert!(q.rollover(&clock));
        assert!(
            !q.rollover(&clock),
            "a single boundary crossing rolled twice"
        );
        assert_eq!(q.used(), 0);
    }

    #[test]
    fn the_historic_limit_is_what_the_paper_era_had() {
        assert_eq!(GOOGLE_2006_DAILY_QUOTA, 1_000);
        let q = QuotaTracker::new(GOOGLE_2006_DAILY_QUOTA);
        assert_eq!(q.limit(), 1_000);
    }
}
