//! # webiq-fault — deterministic resilience substrate
//!
//! WebIQ's real dependencies were flaky and metered: the 2006 Google Web
//! API allowed ~1,000 queries a day, and Deep-Web form handlers routinely
//! timed out or answered 5xx pages. This crate models those obstacles —
//! and the client-side machinery that survives them — without giving up
//! the workspace's core guarantee that every run is a pure function of
//! its seeds:
//!
//! - [`FaultPlan`] injects transient/permanent server errors, timeouts,
//!   and rate-limit faults as a pure function of
//!   `(endpoint, query-key, attempt)`, so a retried call can genuinely
//!   recover yet every outcome is reproducible at any thread count;
//! - [`RetryPolicy`] implements capped exponential backoff with
//!   deterministic jitter, "sleeping" by advancing a [`VirtualClock`]
//!   instead of `thread::sleep` (the `no-sleep` lint rule enforces this
//!   workspace-wide);
//! - [`RetryBudget`] caps how many retries one work item may spend,
//!   mirroring the paper's Fig. 8 query-cost accounting;
//! - [`CircuitBreaker`] is a per-endpoint closed/open/half-open breaker
//!   driven by the same virtual clock;
//! - [`QuotaTracker`] models the daily API quota and tells callers when
//!   to degrade PMI-based Web validation to statistics-only checks;
//! - [`DiskFaultPlan`] extends the same seeded-injection discipline to
//!   the storage layer: torn writes, short reads, ENOSPC, and
//!   rename/fsync failures, each a pure function of `(path, op,
//!   attempt)`, consumed by the `webiq-store` IO shim.
//!
//! Everything is dependency-free (only `webiq-rng`) and panic-free.
#![forbid(unsafe_code)]

pub mod breaker;
pub mod clock;
pub mod config;
pub mod disk;
pub mod plan;
pub mod quota;
pub mod retry;

pub use breaker::{BreakerState, CircuitBreaker};
pub use clock::VirtualClock;
pub use config::FaultConfig;
pub use disk::{DiskFaultKind, DiskFaultPlan, DiskOp};
pub use plan::{query_key, FaultKind, FaultPlan};
pub use quota::{QuotaTracker, GOOGLE_2006_DAILY_QUOTA};
pub use retry::{RetryBudget, RetryPolicy};
