//! Retry policy: capped exponential backoff with deterministic jitter,
//! plus per-work-item retry budgets.
//!
//! Delays are *virtual* (see [`crate::VirtualClock`]) and the jitter is
//! a pure function of `(jitter seed, query key, attempt)`, so two runs —
//! or two worker counts — retry identically. The budget mirrors the
//! paper's Fig. 8 accounting: queries cost real quota, so one stubborn
//! attribute must not be allowed to spend the whole run's allowance.

use std::cell::Cell;

use crate::config::FaultConfig;
use crate::plan::mix;

/// When and how long to back off between attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per call including the first; 1 disables retries.
    pub max_attempts: u32,
    /// First backoff delay (virtual ms) — also the jitter span.
    pub base_backoff_ms: u64,
    /// Cap on the exponential portion (virtual ms).
    pub max_backoff_ms: u64,
    /// Seed of the deterministic jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The policy a [`FaultConfig`] describes (jitter seeded from the
    /// fault seed so one knob steers the whole schedule).
    pub fn from_config(cfg: &FaultConfig) -> Self {
        RetryPolicy {
            max_attempts: cfg.max_attempts.max(1),
            base_backoff_ms: cfg.base_backoff_ms,
            max_backoff_ms: cfg.max_backoff_ms.max(cfg.base_backoff_ms),
            jitter_seed: cfg.seed,
        }
    }

    /// May a call proceed to `attempt` (0-based)? Attempt 0 is always
    /// allowed; retries stop once `max_attempts` have run.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// Backoff before `attempt` (the attempt about to run, 1-based in
    /// effect): `base * 2^(attempt-1)` capped at `max`, plus a
    /// deterministic jitter in `[0, base)` drawn from
    /// `(jitter_seed, key, attempt)`.
    pub fn backoff_ms(&self, key: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let shift = u32::min(attempt - 1, 20);
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ms);
        let jitter = if self.base_backoff_ms > 0 {
            mix(&[self.jitter_seed, key, u64::from(attempt), 0x6a17]) % self.base_backoff_ms
        } else {
            0
        };
        exp.saturating_add(jitter)
    }
}

/// How many retries one work item may still spend.
///
/// Single-threaded by design (one budget per work item), like the rest
/// of the per-item resilience state.
#[derive(Debug)]
pub struct RetryBudget {
    remaining: Cell<u64>,
}

impl RetryBudget {
    /// A budget of `n` retries.
    pub fn new(n: u64) -> Self {
        RetryBudget {
            remaining: Cell::new(n),
        }
    }

    /// Spend one retry; false when the budget is exhausted.
    pub fn try_take(&self) -> bool {
        let left = self.remaining.get();
        if left == 0 {
            return false;
        }
        self.remaining.set(left - 1);
        true
    }

    /// Retries left.
    pub fn remaining(&self) -> u64 {
        self.remaining.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
            jitter_seed: 9,
        }
    }

    #[test]
    fn attempts_are_bounded() {
        let p = policy();
        assert!(p.allows(0));
        assert!(p.allows(3));
        assert!(!p.allows(4));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = policy();
        assert_eq!(p.backoff_ms(1, 0), 0);
        let b1 = p.backoff_ms(1, 1);
        let b2 = p.backoff_ms(1, 2);
        let b3 = p.backoff_ms(1, 3);
        assert!((100..200).contains(&b1), "b1 = {b1}");
        assert!((200..300).contains(&b2), "b2 = {b2}");
        assert!((400..500).contains(&b3), "b3 = {b3}");
        // Deep attempts hit the cap (plus jitter below base).
        let b9 = p.backoff_ms(1, 9);
        assert!((1_000..1_100).contains(&b9), "b9 = {b9}");
    }

    #[test]
    fn jitter_is_deterministic_but_key_dependent() {
        let p = policy();
        assert_eq!(p.backoff_ms(42, 2), p.backoff_ms(42, 2));
        let spread = (0..100u64)
            .map(|k| p.backoff_ms(k, 1))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(spread.len() > 10, "jitter is degenerate: {}", spread.len());
    }

    #[test]
    fn zero_base_means_no_jitter() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_seed: 1,
        };
        assert_eq!(p.backoff_ms(5, 1), 0);
        assert_eq!(p.backoff_ms(5, 2), 0);
    }

    #[test]
    fn budget_depletes_exactly() {
        let b = RetryBudget::new(2);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn from_config_clamps_degenerate_knobs() {
        let p = RetryPolicy::from_config(&FaultConfig {
            max_attempts: 0,
            base_backoff_ms: 500,
            max_backoff_ms: 10,
            ..FaultConfig::default()
        });
        assert_eq!(p.max_attempts, 1);
        assert!(p.max_backoff_ms >= p.base_backoff_ms);
    }
}
