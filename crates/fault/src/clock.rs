//! Virtual time.
//!
//! Library code in this workspace never sleeps and never reads the wall
//! clock (the `no-sleep` and `wall-clock` lint rules enforce both).
//! Waiting — retry backoff, breaker cooldown — is modeled by advancing a
//! [`VirtualClock`] instead: "sleep 200ms" is `advance_ms(200)`, which
//! costs nothing, keeps chaos tests instant, and makes every
//! time-dependent decision a deterministic function of the call
//! sequence rather than of the scheduler.
//!
//! A clock belongs to one work item (it is deliberately not `Sync`), so
//! its evolution is single-threaded and identical at any worker count.

use std::cell::Cell;

/// Deterministic, manually-advanced time in milliseconds.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: Cell<u64>,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.get()
    }

    /// The sanctioned "sleep": advance time by `ms`.
    pub fn advance_ms(&self, ms: u64) {
        self.now_ms.set(self.now_ms.get().saturating_add(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(150);
        c.advance_ms(50);
        assert_eq!(c.now_ms(), 200);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let c = VirtualClock::new();
        c.advance_ms(u64::MAX);
        c.advance_ms(10);
        assert_eq!(c.now_ms(), u64::MAX);
    }
}
