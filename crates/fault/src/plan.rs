//! Seeded, attempt-keyed fault injection.
//!
//! A [`FaultPlan`] decides, for every call a component makes against an
//! external dependency, whether that call fails and how. The decision is
//! a pure function of `(seed, endpoint, query-key, attempt)`:
//!
//! - **transient** faults (server errors, timeouts, rate limits) mix the
//!   attempt number into the draw, so the *same* call can fail on its
//!   first attempt and succeed on a retry — exactly the behaviour a
//!   retry policy needs to be testable;
//! - **permanent** faults deliberately ignore the seed, the endpoint,
//!   and the attempt: they are a property of the request itself (a hash
//!   of the query), so a cursed request fails identically forever. This
//!   reproduces, bit for bit, the legacy `DeepSource::with_failure_rate`
//!   draw (`hash % 10_000` against the rate), which is why
//!   [`FaultPlan::permanent_only`] is a drop-in for it.
//!
//! Because no decision reads mutable state, injection is deterministic
//! at any worker count and across reruns — the chaos suite pins this.

use webiq_rng::StdRng;

use crate::config::FaultConfig;

/// How an injected fault presents to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A 5xx that may clear on retry (the attempt is part of the draw).
    TransientServerError,
    /// A 5xx that never clears: every attempt fails identically.
    PermanentServerError,
    /// The round-trip never completed; retryable.
    Timeout,
    /// The dependency is throttling; retryable after backoff.
    RateLimited,
}

impl FaultKind {
    /// True when a retry has any chance of succeeding.
    pub fn is_transient(self) -> bool {
        !matches!(self, FaultKind::PermanentServerError)
    }

    /// Stable lowercase name (for traces and verdicts).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientServerError => "transient_server_error",
            FaultKind::PermanentServerError => "permanent_server_error",
            FaultKind::Timeout => "timeout",
            FaultKind::RateLimited => "rate_limited",
        }
    }
}

/// A pure, seeded fault-injection schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    permanent_rate: f64,
    timeout_rate: f64,
    rate_limit_rate: f64,
}

impl FaultPlan {
    /// A plan injecting nothing (every call succeeds).
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            permanent_rate: 0.0,
            timeout_rate: 0.0,
            rate_limit_rate: 0.0,
        }
    }

    /// Build the plan a [`FaultConfig`] describes.
    pub fn from_config(cfg: &FaultConfig) -> Self {
        FaultPlan {
            seed: cfg.seed,
            transient_rate: cfg.transient_rate.clamp(0.0, 1.0),
            permanent_rate: cfg.permanent_rate.clamp(0.0, 1.0),
            timeout_rate: cfg.timeout_rate.clamp(0.0, 1.0),
            rate_limit_rate: cfg.rate_limit_rate.clamp(0.0, 1.0),
        }
    }

    /// A plan injecting only transient server errors at `rate`.
    pub fn transient_only(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate.clamp(0.0, 1.0),
            permanent_rate: 0.0,
            timeout_rate: 0.0,
            rate_limit_rate: 0.0,
        }
    }

    /// The legacy failure model: a `rate` fraction of query keys fail
    /// permanently, drawn exactly like `DeepSource::with_failure_rate`
    /// always drew them (`key % 10_000` against the rate — no seed, no
    /// endpoint, no attempt).
    pub fn permanent_only(rate: f64) -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            permanent_rate: rate.clamp(0.0, 1.0),
            timeout_rate: 0.0,
            rate_limit_rate: 0.0,
        }
    }

    /// True when no rate can ever fire — callers may skip the hashing.
    pub fn is_disabled(&self) -> bool {
        self.transient_rate <= 0.0
            && self.permanent_rate <= 0.0
            && self.timeout_rate <= 0.0
            && self.rate_limit_rate <= 0.0
    }

    /// Decide the fate of one call: `endpoint` names the dependency
    /// (e.g. `"engine.search"` or a source name), `query_key` hashes the
    /// request (see [`query_key`]), `attempt` counts from 0. Returns the
    /// injected fault, or `None` when the call goes through.
    pub fn decide(&self, endpoint: &str, query_key: u64, attempt: u32) -> Option<FaultKind> {
        if self.is_disabled() {
            return None;
        }
        // Legacy draw: permanent faults are a property of the request
        // alone (see module docs).
        if self.permanent_rate > 0.0 && (query_key % 10_000) as f64 / 10_000.0 < self.permanent_rate
        {
            return Some(FaultKind::PermanentServerError);
        }
        let ep = fnv1a(endpoint.as_bytes());
        let draw = |salt: u64| unit(mix(&[self.seed, ep, query_key, u64::from(attempt), salt]));
        if self.transient_rate > 0.0 && draw(1) < self.transient_rate {
            return Some(FaultKind::TransientServerError);
        }
        if self.timeout_rate > 0.0 && draw(2) < self.timeout_rate {
            return Some(FaultKind::Timeout);
        }
        if self.rate_limit_rate > 0.0 && draw(3) < self.rate_limit_rate {
            return Some(FaultKind::RateLimited);
        }
        None
    }
}

/// Hash a query string into the key [`FaultPlan::decide`] expects
/// (FNV-1a, the same family `DeepSource` hashes its parameters with).
pub fn query_key(query: &str) -> u64 {
    fnv1a(query.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Fold words into one well-mixed u64 (FNV fold + xor-shift avalanche);
/// [`unit`] finishes the mixing through the rng's seeding.
pub(crate) fn mix(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// A uniform draw in [0, 1) from a fully-mixed key.
fn unit(key: u64) -> f64 {
    StdRng::seed_from_u64(key).next_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        for attempt in 0..8 {
            assert_eq!(p.decide("engine.search", 42, attempt), None);
        }
        assert!(p.is_disabled());
    }

    #[test]
    fn decisions_are_pure_functions_of_the_key() {
        let p = FaultPlan::transient_only(0xfa17, 0.5);
        for key in 0..200u64 {
            for attempt in 0..4 {
                assert_eq!(
                    p.decide("e", key, attempt),
                    p.decide("e", key, attempt),
                    "decision not reproducible"
                );
            }
        }
    }

    #[test]
    fn transient_faults_depend_on_the_attempt() {
        let p = FaultPlan::transient_only(7, 0.5);
        let mut recovered = 0;
        for key in 0..200u64 {
            if p.decide("e", key, 0).is_some() && p.decide("e", key, 1).is_none() {
                recovered += 1;
            }
        }
        assert!(
            recovered > 10,
            "no fault ever cleared on retry: {recovered}"
        );
    }

    #[test]
    fn permanent_faults_ignore_the_attempt() {
        let p = FaultPlan::permanent_only(0.5);
        for key in 0..200u64 {
            let first = p.decide("e", key, 0);
            for attempt in 1..5 {
                assert_eq!(first, p.decide("e", key, attempt));
            }
            if let Some(k) = first {
                assert_eq!(k, FaultKind::PermanentServerError);
                assert!(!k.is_transient());
            }
        }
    }

    #[test]
    fn permanent_only_reproduces_the_legacy_draw() {
        // The exact `with_failure_rate` predicate, bit for bit.
        let rate = 0.37;
        let p = FaultPlan::permanent_only(rate);
        for key in 0..5_000u64 {
            let legacy = (key % 10_000) as f64 / 10_000.0 < rate;
            assert_eq!(p.decide("anything", key, 3).is_some(), legacy);
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = FaultPlan::transient_only(1, 0.2);
        let fired = (0..2_000u64)
            .filter(|k| p.decide("e", *k, 0).is_some())
            .count();
        assert!((200..600).contains(&fired), "fired = {fired}");
    }

    #[test]
    fn endpoints_draw_independently() {
        let p = FaultPlan::transient_only(1, 0.5);
        let differs = (0..200u64)
            .filter(|k| p.decide("a", *k, 0).is_some() != p.decide("b", *k, 0).is_some())
            .count();
        assert!(differs > 20, "endpoints share a schedule: {differs}");
    }

    #[test]
    fn all_kinds_reachable_and_named() {
        let p = FaultPlan::from_config(&FaultConfig {
            seed: 3,
            transient_rate: 0.2,
            timeout_rate: 0.2,
            rate_limit_rate: 0.2,
            permanent_rate: 0.05,
            ..FaultConfig::default()
        });
        let mut seen = [false; 4];
        for key in 0..2_000u64 {
            match p.decide("e", key, 0) {
                Some(FaultKind::TransientServerError) => seen[0] = true,
                Some(FaultKind::PermanentServerError) => seen[1] = true,
                Some(FaultKind::Timeout) => seen[2] = true,
                Some(FaultKind::RateLimited) => seen[3] = true,
                None => {}
            }
        }
        assert_eq!(seen, [true; 4], "some fault kind never fired");
        assert_eq!(FaultKind::Timeout.name(), "timeout");
        assert!(FaultKind::RateLimited.is_transient());
    }
}
