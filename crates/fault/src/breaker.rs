//! Per-endpoint circuit breaker on virtual time.
//!
//! The classic three-state machine: **closed** (calls flow; consecutive
//! failures are counted), **open** (calls fast-fail until a cooldown on
//! the [`crate::VirtualClock`] elapses), **half-open** (one trial call
//! is let through; success closes the breaker, failure re-opens it).
//! All state lives in `Cell`s — a breaker belongs to one work item, so
//! its evolution is single-threaded and deterministic.

use std::cell::Cell;

use crate::clock::VirtualClock;
use crate::config::FaultConfig;

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls fast-fail until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial call decides.
    HalfOpen,
}

/// A closed/open/half-open circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_ms: u64,
    state: Cell<BreakerState>,
    consecutive_failures: Cell<u32>,
    opened_at_ms: Cell<u64>,
}

impl CircuitBreaker {
    /// A closed breaker opening after `threshold` consecutive failures
    /// and half-opening `cooldown_ms` (virtual) later.
    pub fn new(threshold: u32, cooldown_ms: u64) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown_ms,
            state: Cell::new(BreakerState::Closed),
            consecutive_failures: Cell::new(0),
            opened_at_ms: Cell::new(0),
        }
    }

    /// The breaker a [`FaultConfig`] describes.
    pub fn from_config(cfg: &FaultConfig) -> Self {
        CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_ms)
    }

    /// Current state, transitioning open → half-open when the cooldown
    /// has elapsed on `clock`.
    pub fn state(&self, clock: &VirtualClock) -> BreakerState {
        if self.state.get() == BreakerState::Open
            && clock.now_ms().saturating_sub(self.opened_at_ms.get()) >= self.cooldown_ms
        {
            self.state.set(BreakerState::HalfOpen);
        }
        self.state.get()
    }

    /// May a call proceed right now?
    pub fn allow(&self, clock: &VirtualClock) -> bool {
        self.state(clock) != BreakerState::Open
    }

    /// Record a successful call: closes a half-open breaker and resets
    /// the failure streak.
    pub fn record_success(&self) {
        self.consecutive_failures.set(0);
        self.state.set(BreakerState::Closed);
    }

    /// Record a failed call: re-opens a half-open breaker immediately,
    /// opens a closed one once the streak reaches the threshold.
    pub fn record_failure(&self, clock: &VirtualClock) {
        let now = clock.now_ms();
        if self.state(clock) == BreakerState::HalfOpen {
            self.state.set(BreakerState::Open);
            self.opened_at_ms.set(now);
            return;
        }
        let streak = self.consecutive_failures.get().saturating_add(1);
        self.consecutive_failures.set(streak);
        if streak >= self.threshold && self.state.get() == BreakerState::Closed {
            self.state.set(BreakerState::Open);
            self.opened_at_ms.set(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(3, 500);
        b.record_failure(&clock);
        b.record_failure(&clock);
        assert_eq!(b.state(&clock), BreakerState::Closed);
        b.record_failure(&clock);
        assert_eq!(b.state(&clock), BreakerState::Open);
        assert!(!b.allow(&clock));
    }

    #[test]
    fn success_resets_the_streak() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(2, 500);
        b.record_failure(&clock);
        b.record_success();
        b.record_failure(&clock);
        assert_eq!(b.state(&clock), BreakerState::Closed);
    }

    #[test]
    fn full_recovery_cycle_open_half_open_closed() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(1, 500);
        b.record_failure(&clock);
        assert_eq!(b.state(&clock), BreakerState::Open);
        clock.advance_ms(499);
        assert!(!b.allow(&clock));
        clock.advance_ms(1);
        assert_eq!(b.state(&clock), BreakerState::HalfOpen);
        assert!(b.allow(&clock));
        b.record_success();
        assert_eq!(b.state(&clock), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_with_fresh_cooldown() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(1, 500);
        b.record_failure(&clock);
        clock.advance_ms(500);
        assert_eq!(b.state(&clock), BreakerState::HalfOpen);
        b.record_failure(&clock);
        assert_eq!(b.state(&clock), BreakerState::Open);
        clock.advance_ms(499);
        assert!(!b.allow(&clock));
        clock.advance_ms(1);
        assert_eq!(b.state(&clock), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_reopens_on_a_single_failed_probe_despite_high_threshold() {
        // Opening took three consecutive failures, but once half-open a
        // SINGLE failed trial call re-opens — the streak counter does
        // not apply to the probe.
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(3, 250);
        b.record_failure(&clock);
        b.record_failure(&clock);
        b.record_failure(&clock);
        assert_eq!(b.state(&clock), BreakerState::Open);
        clock.advance_ms(250);
        assert_eq!(b.state(&clock), BreakerState::HalfOpen);
        b.record_failure(&clock);
        assert_eq!(
            b.state(&clock),
            BreakerState::Open,
            "half-open must not wait for a fresh failure streak"
        );
        assert!(!b.allow(&clock));
        // And the cooldown restarted at the probe failure.
        clock.advance_ms(249);
        assert_eq!(b.state(&clock), BreakerState::Open);
        clock.advance_ms(1);
        assert_eq!(b.state(&clock), BreakerState::HalfOpen);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(0, 100);
        b.record_failure(&clock);
        assert_eq!(b.state(&clock), BreakerState::Open);
    }
}
