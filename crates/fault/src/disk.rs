//! Seeded disk-fault injection — the storage analogue of [`crate::FaultPlan`].
//!
//! A [`DiskFaultPlan`] decides, for every filesystem operation a store
//! performs, whether that operation fails and how. Like the network
//! plan, the decision is a pure function of `(seed, path, op, attempt)`,
//! so a chaos run replays bit-for-bit at any thread count:
//!
//! - **torn write** — only the first `k` bytes of a write reach the
//!   platter before the "crash"; `k` is derived from the same draw, so
//!   the tear point is deterministic too;
//! - **short read** — a read returns a prefix of the file, modelling a
//!   reader racing a crashed writer or a truncated sector;
//! - **ENOSPC** — the device is full: nothing is written at all;
//! - **rename failure** — the atomic-publish step itself fails, leaving
//!   the temporary file behind and the old snapshot in place;
//! - **fsync failure** — the data may or may not be durable; a correct
//!   store must treat the write as un-committed.
//!
//! The plan injects only on the *first* attempt of an operation by
//! default (`retryable` draws mix the attempt in), matching how real
//! disks fail: a full device stays full, but a torn write is a crash
//! artefact that does not repeat once the process is back up.

use crate::plan::mix;
use webiq_rng::StdRng;

/// Filesystem operations the plan can intercept, as the store's IO shim
/// names them. The operation is part of the draw, so a plan can fail a
/// rename without ever touching appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// Appending a record frame to the log.
    Append,
    /// Writing a whole file (the snapshot temporary).
    WriteFile,
    /// Reading a whole file back.
    Read,
    /// `fsync` on a written file.
    Sync,
    /// Atomically renaming the snapshot temporary into place.
    Rename,
}

impl DiskOp {
    /// All operations, in declaration order (for sweeps).
    pub const ALL: [DiskOp; 5] = [
        DiskOp::Append,
        DiskOp::WriteFile,
        DiskOp::Read,
        DiskOp::Sync,
        DiskOp::Rename,
    ];

    /// Stable lowercase name (for errors and verdicts).
    pub fn name(self) -> &'static str {
        match self {
            DiskOp::Append => "append",
            DiskOp::WriteFile => "write_file",
            DiskOp::Read => "read",
            DiskOp::Sync => "sync",
            DiskOp::Rename => "rename",
        }
    }

    fn salt(self) -> u64 {
        match self {
            DiskOp::Append => 11,
            DiskOp::WriteFile => 12,
            DiskOp::Read => 13,
            DiskOp::Sync => 14,
            DiskOp::Rename => 15,
        }
    }
}

/// How an injected disk fault presents to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// Only the first `at` bytes of the write land before the failure.
    TornWrite {
        /// Bytes that actually reached the file.
        at: usize,
    },
    /// The read observes only the first `at` bytes of the file.
    ShortRead {
        /// Bytes visible to the reader.
        at: usize,
    },
    /// The device is full; nothing is written.
    Enospc,
    /// The rename itself failed; the target is untouched.
    RenameFailed,
    /// `fsync` failed; durability of prior writes is unknown.
    SyncFailed,
}

impl DiskFaultKind {
    /// Stable lowercase name (for errors and verdicts).
    pub fn name(self) -> &'static str {
        match self {
            DiskFaultKind::TornWrite { .. } => "torn_write",
            DiskFaultKind::ShortRead { .. } => "short_read",
            DiskFaultKind::Enospc => "enospc",
            DiskFaultKind::RenameFailed => "rename_failed",
            DiskFaultKind::SyncFailed => "sync_failed",
        }
    }
}

/// A pure, seeded disk-fault schedule.
///
/// Rates are per-operation probabilities. Each `(path, op, attempt)`
/// triple draws independently, and the tear/short point for a sized
/// operation is derived from the same key, so the whole failure —
/// whether it fires *and* where it cuts — replays exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFaultPlan {
    seed: u64,
    torn_write_rate: f64,
    short_read_rate: f64,
    enospc_rate: f64,
    rename_fail_rate: f64,
    sync_fail_rate: f64,
}

impl DiskFaultPlan {
    /// A plan injecting nothing (every operation succeeds).
    pub fn disabled() -> Self {
        DiskFaultPlan {
            seed: 0,
            torn_write_rate: 0.0,
            short_read_rate: 0.0,
            enospc_rate: 0.0,
            rename_fail_rate: 0.0,
            sync_fail_rate: 0.0,
        }
    }

    /// A plan injecting every fault family at `rate` under `seed` — the
    /// storage chaos preset.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        let r = rate.clamp(0.0, 1.0);
        DiskFaultPlan {
            seed,
            torn_write_rate: r,
            short_read_rate: r,
            enospc_rate: r,
            rename_fail_rate: r,
            sync_fail_rate: r,
        }
    }

    /// A plan injecting only torn writes at `rate` (the crash-sweep
    /// workhorse).
    pub fn torn_only(seed: u64, rate: f64) -> Self {
        DiskFaultPlan {
            torn_write_rate: rate.clamp(0.0, 1.0),
            ..DiskFaultPlan::chaos(seed, 0.0)
        }
    }

    /// True when no rate can ever fire — the shim may skip the hashing.
    pub fn is_disabled(&self) -> bool {
        self.torn_write_rate <= 0.0
            && self.short_read_rate <= 0.0
            && self.enospc_rate <= 0.0
            && self.rename_fail_rate <= 0.0
            && self.sync_fail_rate <= 0.0
    }

    /// Decide the fate of one operation: `path` names the file (as the
    /// store addresses it), `op` the operation, `attempt` counts from 0,
    /// and `len` is the byte length being written or read (used to place
    /// the tear point; pass 0 for unsized operations). Returns the
    /// injected fault, or `None` when the operation goes through.
    pub fn decide(
        &self,
        path: &str,
        op: DiskOp,
        attempt: u32,
        len: usize,
    ) -> Option<DiskFaultKind> {
        if self.is_disabled() {
            return None;
        }
        let key = mix(&[
            self.seed,
            fnv1a(path.as_bytes()),
            op.salt(),
            u64::from(attempt),
        ]);
        let mut rng = StdRng::seed_from_u64(key);
        let draw = rng.next_f64();
        // The cut point reuses the stream so (fired, where) is one key.
        let mut cut = |len: usize| -> usize {
            if len == 0 {
                0
            } else {
                // Uniform in [0, len): at least one byte is always lost,
                // so a "torn" write is genuinely torn.
                (rng.next_f64() * len as f64) as usize % len
            }
        };
        match op {
            DiskOp::Append | DiskOp::WriteFile => {
                if draw < self.torn_write_rate {
                    return Some(DiskFaultKind::TornWrite { at: cut(len) });
                }
                if draw < self.torn_write_rate + self.enospc_rate {
                    return Some(DiskFaultKind::Enospc);
                }
            }
            DiskOp::Read => {
                if draw < self.short_read_rate {
                    return Some(DiskFaultKind::ShortRead { at: cut(len) });
                }
            }
            DiskOp::Sync => {
                if draw < self.sync_fail_rate {
                    return Some(DiskFaultKind::SyncFailed);
                }
            }
            DiskOp::Rename => {
                if draw < self.rename_fail_rate {
                    return Some(DiskFaultKind::RenameFailed);
                }
            }
        }
        None
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = DiskFaultPlan::disabled();
        assert!(p.is_disabled());
        for op in DiskOp::ALL {
            for attempt in 0..4 {
                assert_eq!(p.decide("store/log", op, attempt, 128), None);
            }
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_key() {
        let p = DiskFaultPlan::chaos(0xd15c, 0.5);
        for op in DiskOp::ALL {
            for attempt in 0..4 {
                assert_eq!(
                    p.decide("a/b", op, attempt, 100),
                    p.decide("a/b", op, attempt, 100),
                    "decision not reproducible for {}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn tear_points_are_deterministic_and_in_range() {
        let p = DiskFaultPlan::torn_only(7, 1.0);
        for len in [1usize, 2, 64, 4096] {
            match p.decide("log", DiskOp::Append, 0, len) {
                Some(DiskFaultKind::TornWrite { at }) => {
                    assert!(at < len, "tear at {at} not inside {len}");
                    assert_eq!(
                        p.decide("log", DiskOp::Append, 0, len),
                        Some(DiskFaultKind::TornWrite { at }),
                        "tear point moved between draws"
                    );
                }
                other => panic!("torn rate 1.0 must tear: {other:?}"),
            }
        }
    }

    #[test]
    fn attempts_draw_independently() {
        // A torn write on attempt 0 clears on a later attempt for at
        // least some paths — crash artefacts do not repeat forever.
        let p = DiskFaultPlan::torn_only(3, 0.5);
        let recovered = (0..200)
            .filter(|i| {
                let path = format!("log{i}");
                p.decide(&path, DiskOp::Append, 0, 64).is_some()
                    && p.decide(&path, DiskOp::Append, 1, 64).is_none()
            })
            .count();
        assert!(
            recovered > 10,
            "no fault ever cleared on retry: {recovered}"
        );
    }

    #[test]
    fn ops_draw_independently() {
        let p = DiskFaultPlan::chaos(9, 0.5);
        let differs = (0..200)
            .filter(|i| {
                let path = format!("f{i}");
                p.decide(&path, DiskOp::Sync, 0, 0).is_some()
                    != p.decide(&path, DiskOp::Rename, 0, 0).is_some()
            })
            .count();
        assert!(differs > 20, "ops share a schedule: {differs}");
    }

    #[test]
    fn all_kinds_reachable_and_named() {
        let p = DiskFaultPlan::chaos(41, 0.4);
        let mut seen = [false; 5];
        for i in 0..500 {
            let path = format!("p{i}");
            for op in DiskOp::ALL {
                match p.decide(&path, op, 0, 32) {
                    Some(DiskFaultKind::TornWrite { .. }) => seen[0] = true,
                    Some(DiskFaultKind::ShortRead { .. }) => seen[1] = true,
                    Some(DiskFaultKind::Enospc) => seen[2] = true,
                    Some(DiskFaultKind::RenameFailed) => seen[3] = true,
                    Some(DiskFaultKind::SyncFailed) => seen[4] = true,
                    None => {}
                }
            }
        }
        assert_eq!(seen, [true; 5], "some disk-fault kind never fired");
        assert_eq!(DiskFaultKind::Enospc.name(), "enospc");
        assert_eq!(DiskOp::Rename.name(), "rename");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = DiskFaultPlan::torn_only(1, 0.2);
        let fired = (0..2_000)
            .filter(|i| p.decide(&format!("x{i}"), DiskOp::Append, 0, 16).is_some())
            .count();
        assert!((200..600).contains(&fired), "fired = {fired}");
    }
}
