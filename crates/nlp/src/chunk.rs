//! Shallow chunking: noun-phrase recognition and label-form classification.
//!
//! §2.1 of the paper: the label of an attribute is checked for the
//! occurrence of a *noun phrase*, a *prepositional phrase* (preposition
//! followed by a noun phrase), or a *noun-phrase conjunction*; the obtained
//! POS tags are matched against pre-determined patterns. The noun-phrase
//! pattern is: optional determiner + optional modifiers (adjectives /
//! noun-adjectives) + noun + optional post-modifier (prepositional phrase).

use crate::inflect;
use crate::pos::{self, Tag, Tagged};

/// A recognised noun phrase.
///
/// `words` holds the lowercase core (modifiers + head noun, determiner
/// dropped); `head` indexes the head noun within `words`; `post_modifier`
/// is an optional prepositional-phrase post-modifier (`class **of
/// service**`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NounPhrase {
    /// Lowercased core words: modifiers followed by the head noun.
    pub words: Vec<String>,
    /// Index of the head noun within `words` (always the last core word).
    pub head: usize,
    /// Optional `preposition + NP` post-modifier.
    pub post_modifier: Option<(String, Box<NounPhrase>)>,
}

impl NounPhrase {
    /// Build a post-modifier-free NP from lowercase words; the last word is
    /// the head.
    pub fn simple(words: Vec<String>) -> Self {
        assert!(
            !words.is_empty(),
            "a noun phrase needs at least a head noun"
        );
        let head = words.len() - 1;
        NounPhrase {
            words,
            head,
            post_modifier: None,
        }
    }

    /// The head noun.
    pub fn head_word(&self) -> &str {
        &self.words[self.head]
    }

    /// Full surface text, e.g. `"class of service"`.
    pub fn text(&self) -> String {
        let mut s = self.words.join(" ");
        if let Some((prep, np)) = &self.post_modifier {
            s.push(' ');
            s.push_str(prep);
            s.push(' ');
            s.push_str(&np.text());
        }
        s
    }

    /// Surface text with the head noun pluralised: `"departure city"` →
    /// `"departure cities"`, `"class of service"` → `"classes of service"`.
    ///
    /// This is the `Ls` of the extraction patterns in Fig. 4 of the paper.
    pub fn plural_text(&self) -> String {
        let mut words = self.words.clone();
        words[self.head] = inflect::pluralize(&words[self.head]);
        let mut s = words.join(" ");
        if let Some((prep, np)) = &self.post_modifier {
            s.push(' ');
            s.push_str(prep);
            s.push(' ');
            s.push_str(&np.text());
        }
        s
    }

    /// True if the head noun is already plural.
    pub fn head_is_plural(&self) -> bool {
        inflect::is_plural(self.head_word())
    }
}

/// Syntactic classification of an attribute label (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelForm {
    /// The label is (or contains) a noun phrase: `Departure city`,
    /// `Class of service`.
    NounPhrase(NounPhrase),
    /// Preposition followed by an optional noun phrase: `From city`
    /// (np = Some) or bare `From` (np = None).
    PrepPhrase {
        /// The leading preposition, lowercased.
        prep: String,
        /// The noun phrase following it, if any.
        np: Option<NounPhrase>,
    },
    /// Verb-initial label: `Depart from` (np = None),
    /// `Select departure city` (np = Some).
    VerbPhrase {
        /// The leading verb, lowercased.
        verb: String,
        /// The first noun phrase following it, if any.
        np: Option<NounPhrase>,
    },
    /// Noun phrases joined by coordinating conjunctions:
    /// `First name or last name`.
    Conjunction(Vec<NounPhrase>),
    /// None of the interesting forms.
    Other,
}

impl LabelForm {
    /// The noun phrases usable for extraction-query formulation. Empty when
    /// the label contains no noun phrase (extraction terminates, §2.1).
    pub fn noun_phrases(&self) -> Vec<&NounPhrase> {
        match self {
            LabelForm::NounPhrase(np) => vec![np],
            LabelForm::PrepPhrase { np: Some(np), .. } => vec![np],
            LabelForm::VerbPhrase { np: Some(np), .. } => vec![np],
            LabelForm::Conjunction(nps) => nps.iter().collect(),
            _ => vec![],
        }
    }
}

/// Try to parse one core NP starting at `i`: `(DT)? modifier* noun`.
/// Returns `(core_start, core_end_exclusive, next_index)` — the span of
/// the NP body (determiner excluded) and where parsing may resume.
///
/// A bare number (`1996`, `$15,000`) is accepted as a degenerate one-token
/// item: numeric attribute domains (years, mileages, prices) complete cue
/// phrases with numbers rather than noun phrases, and §2.2's numeric
/// outlier statistics presuppose that such candidates get extracted.
fn parse_core_np_span(tagged: &[Tagged], mut i: usize) -> Option<(usize, usize, usize)> {
    if i < tagged.len() && tagged[i].tag == Tag::DT {
        i += 1;
    }
    let body_start = i;
    // Greedily take modifiers and nouns; the NP ends at the last noun seen.
    let mut last_noun: Option<usize> = None;
    while i < tagged.len() {
        let tag = tagged[i].tag;
        if tag.is_noun() {
            last_noun = Some(i);
            i += 1;
        } else if tag.is_np_modifier() {
            i += 1;
        } else {
            break;
        }
    }
    match last_noun {
        Some(n) => Some((body_start, n + 1, n + 1)),
        // no noun: a leading number forms its own item ("1996, 1997, …")
        None if tagged.get(body_start).is_some_and(|t| t.tag == Tag::CD) => {
            Some((body_start, body_start + 1, body_start + 1))
        }
        None => None,
    }
}

/// Try to parse one core NP starting at `i`: `(DT)? modifier* noun`.
/// Returns the NP (without post-modifier) and the next index.
fn parse_core_np(tagged: &[Tagged], i: usize) -> Option<(NounPhrase, usize)> {
    let (start, end, next) = parse_core_np_span(tagged, i)?;
    let words: Vec<String> = tagged[start..end]
        .iter()
        .map(super::pos::Tagged::lower)
        .collect();
    debug_assert!(!words.is_empty());
    let head = words.len() - 1;
    Some((
        NounPhrase {
            words,
            head,
            post_modifier: None,
        },
        next,
    ))
}

/// Parse an NP with an optional prepositional post-modifier starting at `i`.
fn parse_np(tagged: &[Tagged], i: usize) -> Option<(NounPhrase, usize)> {
    let (mut np, mut next) = parse_core_np(tagged, i)?;
    // Optional PP post-modifier: IN + core NP. Restricted to `of` so that a
    // conjunction like "city of departure and arrival" attaches sensibly and
    // a label like "departure in March" does not swallow instances.
    if next + 1 < tagged.len() && tagged[next].tag == Tag::IN && tagged[next].lower() == "of" {
        if let Some((pp_np, after)) = parse_core_np(tagged, next + 1) {
            np.post_modifier = Some(("of".to_string(), Box::new(pp_np)));
            next = after;
        }
    }
    Some((np, next))
}

/// Find the first NP anywhere in the sequence.
fn find_first_np(tagged: &[Tagged]) -> Option<NounPhrase> {
    for i in 0..tagged.len() {
        if let Some((np, _)) = parse_np(tagged, i) {
            return Some(np);
        }
    }
    None
}

/// Strip trailing punctuation tokens (labels often end with `:` or `*`).
fn strip_punct(mut tagged: Vec<Tagged>) -> Vec<Tagged> {
    while tagged.last().is_some_and(|t| t.tag == Tag::SYM) {
        tagged.pop();
    }
    tagged.retain(|t| t.tag != Tag::SYM);
    tagged
}

/// Classify an attribute label into one of the forms of §2.1.
///
/// ```
/// use webiq_nlp::chunk::{classify_label, LabelForm};
///
/// assert!(matches!(classify_label("Departure city"), LabelForm::NounPhrase(_)));
/// assert!(matches!(classify_label("From city"), LabelForm::PrepPhrase { .. }));
/// assert!(matches!(classify_label("Depart from"), LabelForm::VerbPhrase { .. }));
///
/// if let LabelForm::NounPhrase(np) = classify_label("Class of service") {
///     assert_eq!(np.plural_text(), "classes of service");
/// }
/// ```
pub fn classify_label(label: &str) -> LabelForm {
    let tagged = strip_punct(pos::tag(label));
    if tagged.is_empty() {
        return LabelForm::Other;
    }
    let first = &tagged[0];
    // Prepositional label: `From city`, bare `From`, `To`, `Within`.
    if first.tag == Tag::IN || first.tag == Tag::TO {
        let np = find_first_np(&tagged[1..]);
        return LabelForm::PrepPhrase {
            prep: first.lower(),
            np,
        };
    }
    // Verb-initial label: `Depart from`, `Select departure city`.
    if first.tag.is_verb() {
        let np = find_first_np(&tagged[1..]);
        return LabelForm::VerbPhrase {
            verb: first.lower(),
            np,
        };
    }
    // NP conjunction: NP (CC NP)+
    if let Some((head_np, mut next)) = parse_np(&tagged, 0) {
        let mut nps = vec![head_np];
        while next < tagged.len() && tagged[next].tag == Tag::CC {
            match parse_np(&tagged, next + 1) {
                Some((np, after)) => {
                    nps.push(np);
                    next = after;
                }
                None => break,
            }
        }
        let mut it = nps.into_iter();
        return match (it.next(), it.next()) {
            (Some(a), Some(b)) => LabelForm::Conjunction([a, b].into_iter().chain(it).collect()),
            (Some(only), None) => LabelForm::NounPhrase(only),
            (None, _) => LabelForm::Other,
        };
    }
    // No NP at the start; look anywhere (e.g. "cheapest available fare" with
    // an unknown leading adverb).
    match find_first_np(&tagged) {
        Some(np) => LabelForm::NounPhrase(np),
        None => LabelForm::Other,
    }
}

/// Like [`parse_np_list`] but returning token-index spans
/// `(start, end_exclusive)` into `tagged`, so callers can recover the
/// original (cased) surface text of each list item.
pub fn parse_np_list_spans(tagged: &[Tagged]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some((start, end, next)) = parse_core_np_span(tagged, i) {
        out.push((start, end));
        i = next;
        let mut progressed = false;
        while i < tagged.len() {
            let t = &tagged[i];
            let is_separator = (t.tag == Tag::SYM && t.token.text == ",") || t.tag == Tag::CC;
            if is_separator {
                i += 1;
                progressed = true;
            } else {
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

/// Parse a comma/conjunction-separated list of noun phrases starting at the
/// beginning of `tagged`, as produced by set extraction patterns
/// (`"... such as Boston, Chicago, and LAX"`). Parsing stops at the first
/// token that fits neither an NP nor a separator.
pub fn parse_np_list(tagged: &[Tagged]) -> Vec<NounPhrase> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some((np, next)) = parse_core_np(tagged, i) {
        out.push(np);
        i = next;
        // Accept separators: "," / "and" / "or" / ", and".
        let mut progressed = false;
        while i < tagged.len() {
            let t = &tagged[i];
            let is_separator = (t.tag == Tag::SYM && t.token.text == ",") || t.tag == Tag::CC;
            if is_separator {
                i += 1;
                progressed = true;
            } else {
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn np(words: &[&str]) -> NounPhrase {
        NounPhrase::simple(words.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn classifies_simple_noun_phrase() {
        match classify_label("Departure city") {
            LabelForm::NounPhrase(n) => {
                assert_eq!(n.words, vec!["departure", "city"]);
                assert_eq!(n.head_word(), "city");
            }
            other => panic!("expected NounPhrase, got {other:?}"),
        }
    }

    #[test]
    fn classifies_np_with_pp_postmodifier() {
        match classify_label("Class of service") {
            LabelForm::NounPhrase(n) => {
                assert_eq!(n.words, vec!["class"]);
                let (prep, inner) = n.post_modifier.as_ref().expect("post-modifier");
                assert_eq!(prep, "of");
                assert_eq!(inner.words, vec!["service"]);
                assert_eq!(n.text(), "class of service");
                assert_eq!(n.plural_text(), "classes of service");
            }
            other => panic!("expected NounPhrase, got {other:?}"),
        }
    }

    #[test]
    fn classifies_prepositional_phrase() {
        match classify_label("From city") {
            LabelForm::PrepPhrase { prep, np } => {
                assert_eq!(prep, "from");
                assert_eq!(np.expect("np").words, vec!["city"]);
            }
            other => panic!("expected PrepPhrase, got {other:?}"),
        }
    }

    #[test]
    fn bare_preposition_has_no_np() {
        match classify_label("From") {
            LabelForm::PrepPhrase { prep, np } => {
                assert_eq!(prep, "from");
                assert!(np.is_none());
            }
            other => panic!("expected PrepPhrase, got {other:?}"),
        }
    }

    #[test]
    fn classifies_verb_phrase() {
        match classify_label("Depart from") {
            LabelForm::VerbPhrase { verb, np } => {
                assert_eq!(verb, "depart");
                assert!(np.is_none());
            }
            other => panic!("expected VerbPhrase, got {other:?}"),
        }
    }

    #[test]
    fn verb_phrase_with_np() {
        match classify_label("Select departure city") {
            LabelForm::VerbPhrase { verb, np } => {
                assert_eq!(verb, "select");
                assert_eq!(np.expect("np").words, vec!["departure", "city"]);
            }
            other => panic!("expected VerbPhrase, got {other:?}"),
        }
    }

    #[test]
    fn classifies_conjunction() {
        match classify_label("First name or last name") {
            LabelForm::Conjunction(nps) => {
                assert_eq!(nps.len(), 2);
                assert_eq!(nps[0].words, vec!["first", "name"]);
                assert_eq!(nps[1].words, vec!["last", "name"]);
            }
            other => panic!("expected Conjunction, got {other:?}"),
        }
    }

    #[test]
    fn trailing_colon_is_stripped() {
        match classify_label("Airline:") {
            LabelForm::NounPhrase(n) => assert_eq!(n.words, vec!["airline"]),
            other => panic!("expected NounPhrase, got {other:?}"),
        }
    }

    #[test]
    fn empty_label_is_other() {
        assert_eq!(classify_label(""), LabelForm::Other);
        assert_eq!(classify_label(":"), LabelForm::Other);
    }

    #[test]
    fn determiner_is_dropped_from_core() {
        match classify_label("The make") {
            LabelForm::NounPhrase(n) => assert_eq!(n.words, vec!["make"]),
            other => panic!("expected NounPhrase, got {other:?}"),
        }
    }

    #[test]
    fn plural_head_pluralization() {
        let n = np(&["departure", "city"]);
        assert_eq!(n.plural_text(), "departure cities");
        assert!(!n.head_is_plural());
        let n = np(&["bedrooms"]);
        assert!(n.head_is_plural());
    }

    #[test]
    fn noun_phrases_accessor() {
        let form = classify_label("First name or last name");
        assert_eq!(form.noun_phrases().len(), 2);
        let form = classify_label("From");
        assert!(form.noun_phrases().is_empty());
    }

    #[test]
    fn parses_np_list_from_snippet() {
        let tagged = pos::tag("Boston, Chicago, and LAX. More text follows");
        let nps = parse_np_list(&tagged);
        assert!(nps.len() >= 3, "got {nps:?}");
        assert_eq!(nps[0].text(), "boston");
        assert_eq!(nps[1].text(), "chicago");
        assert_eq!(nps[2].text(), "lax");
    }

    #[test]
    fn np_list_multiword_proper_nouns() {
        let tagged = pos::tag("Air Canada, American, and United");
        let nps = parse_np_list(&tagged);
        assert_eq!(nps.len(), 3);
        assert_eq!(nps[0].text(), "air canada");
    }

    #[test]
    fn np_list_stops_at_non_np() {
        let tagged = pos::tag("Boston from Chicago");
        let nps = parse_np_list(&tagged);
        assert_eq!(nps.len(), 1);
    }

    #[test]
    fn numeric_list_items_are_extracted() {
        let tagged = pos::tag("1996, 1997, and 1998 are available");
        let spans = parse_np_list_spans(&tagged);
        assert_eq!(spans.len(), 3, "{spans:?}");
        let tagged = pos::tag("$5,000 and $10,000");
        let spans = parse_np_list_spans(&tagged);
        assert_eq!(spans.len(), 2, "{spans:?}");
    }

    #[test]
    fn number_noun_compound_stays_one_np() {
        // "2 bedrooms" must remain a single NP headed by the noun
        let tagged = pos::tag("2 bedrooms");
        let nps = parse_np_list(&tagged);
        assert_eq!(nps.len(), 1);
        assert_eq!(nps[0].text(), "2 bedrooms");
    }
}
