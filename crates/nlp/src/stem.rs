//! Porter stemming.
//!
//! IceQ's label similarity compares word vectors built from labels; stemming
//! conflates morphological variants (`departure`/`departing`, `location`/
//! `locations`) so cosine similarity sees them as the same dimension. This
//! is a standard implementation of Porter's 1980 algorithm (steps 1a–5b).

/// Stem an English word with Porter's algorithm. Input is lowercased; words
/// shorter than three characters are returned unchanged (per the original
/// algorithm's guidance).
///
/// ```
/// use webiq_nlp::stem::stem;
/// assert_eq!(stem("cities"), "citi");
/// assert_eq!(stem("locations"), stem("location"));
/// ```
pub fn stem(word: &str) -> String {
    let w = word.to_ascii_lowercase();
    if w.len() <= 2 || !w.bytes().all(|b| b.is_ascii_alphabetic()) {
        return w;
    }
    let mut b: Vec<u8> = w.into_bytes();
    step1a(&mut b);
    step1b(&mut b);
    step1c(&mut b);
    step2(&mut b);
    step3(&mut b);
    step4(&mut b);
    step5a(&mut b);
    step5b(&mut b);
    // ASCII in, ASCII out; lossy conversion is the panic-free identity here.
    String::from_utf8_lossy(&b).into_owned()
}

/// Is `b[i]` a consonant (in the Porter sense, where `y` is contextual)?
fn is_cons(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_cons(b, i - 1),
        _ => true,
    }
}

/// Porter's measure m of `b[..len]`: number of VC sequences.
fn measure(b: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // skip initial consonants
    while i < len && is_cons(b, i) {
        i += 1;
    }
    loop {
        // skip vowels
        while i < len && !is_cons(b, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        m += 1;
        // skip consonants
        while i < len && is_cons(b, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
    }
}

/// Does `b[..len]` contain a vowel?
fn has_vowel(b: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_cons(b, i))
}

/// Does `b[..len]` end with a double consonant?
fn double_cons(b: &[u8], len: usize) -> bool {
    matches!(b.get(..len), Some([.., x, y]) if x == y) && is_cons(b, len - 1)
}

/// Does `b[..len]` end consonant-vowel-consonant, where the final consonant
/// is not w, x, or y?
fn cvc(b: &[u8], len: usize) -> bool {
    len >= 3
        && is_cons(b, len - 3)
        && !is_cons(b, len - 2)
        && is_cons(b, len - 1)
        && !matches!(b.get(..len), Some([.., b'w' | b'x' | b'y']))
}

fn ends_with(b: &[u8], suffix: &str) -> bool {
    b.ends_with(suffix.as_bytes())
}

/// Replace the trailing `suffix` with `to` if the stem before it has
/// measure > `min_m`. Returns true if replaced.
fn replace_if(b: &mut Vec<u8>, suffix: &str, to: &str, min_m: usize) -> bool {
    if ends_with(b, suffix) {
        let stem_len = b.len() - suffix.len();
        if measure(b, stem_len) > min_m {
            b.truncate(stem_len);
            b.extend_from_slice(to.as_bytes());
        }
        true // suffix matched (even if condition failed, stop trying others)
    } else {
        false
    }
}

fn step1a(b: &mut Vec<u8>) {
    if ends_with(b, "sses") || ends_with(b, "ies") {
        b.truncate(b.len() - 2);
    } else if ends_with(b, "ss") {
        // unchanged
    } else if ends_with(b, "s") {
        b.truncate(b.len() - 1);
    }
}

fn step1b(b: &mut Vec<u8>) {
    if ends_with(b, "eed") {
        let stem_len = b.len() - 3;
        if measure(b, stem_len) > 0 {
            b.truncate(b.len() - 1);
        }
        return;
    }
    let trimmed = if ends_with(b, "ed") && has_vowel(b, b.len() - 2) {
        b.truncate(b.len() - 2);
        true
    } else if ends_with(b, "ing") && has_vowel(b, b.len() - 3) {
        b.truncate(b.len() - 3);
        true
    } else {
        false
    };
    if trimmed {
        if ends_with(b, "at") || ends_with(b, "bl") || ends_with(b, "iz") {
            b.push(b'e');
        } else if double_cons(b, b.len()) && !matches!(b.last(), Some(b'l' | b's' | b'z')) {
            b.truncate(b.len() - 1);
        } else if measure(b, b.len()) == 1 && cvc(b, b.len()) {
            b.push(b'e');
        }
    }
}

fn step1c(b: &mut [u8]) {
    let n = b.len();
    if n >= 2 && b.ends_with(b"y") && has_vowel(b, n - 1) {
        if let Some(last) = b.last_mut() {
            *last = b'i';
        }
    }
}

fn step2(b: &mut Vec<u8>) {
    static PAIRS: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (from, to) in PAIRS {
        if replace_if(b, from, to, 0) {
            return;
        }
    }
}

fn step3(b: &mut Vec<u8>) {
    static PAIRS: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (from, to) in PAIRS {
        if replace_if(b, from, to, 0) {
            return;
        }
    }
}

fn step4(b: &mut Vec<u8>) {
    static SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suffix in SUFFIXES {
        if ends_with(b, suffix) {
            let stem_len = b.len() - suffix.len();
            if measure(b, stem_len) > 1 {
                b.truncate(stem_len);
            }
            return;
        }
    }
    // special case: -ion preceded by s or t
    if ends_with(b, "ion") {
        let stem_len = b.len() - 3;
        if matches!(b.get(..stem_len), Some([.., b's' | b't'])) && measure(b, stem_len) > 1 {
            b.truncate(stem_len);
        }
    }
}

fn step5a(b: &mut Vec<u8>) {
    if ends_with(b, "e") {
        let stem_len = b.len() - 1;
        let m = measure(b, stem_len);
        if m > 1 || (m == 1 && !cvc(b, stem_len)) {
            b.truncate(stem_len);
        }
    }
}

fn step5b(b: &mut Vec<u8>) {
    let n = b.len();
    if b.ends_with(b"ll") && measure(b, n) > 1 {
        b.truncate(n - 1);
    }
}

/// Stem every word of an already-tokenized lowercase word list.
pub fn stem_all<I: IntoIterator<Item = S>, S: AsRef<str>>(words: I) -> Vec<String> {
    words.into_iter().map(|w| stem(w.as_ref())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_porter_examples() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
        assert_eq!(stem("feed"), "feed");
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("sing"), "sing");
        assert_eq!(stem("conflated"), "conflat");
        assert_eq!(stem("troubled"), "troubl");
        assert_eq!(stem("sized"), "size");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("falling"), "fall");
        assert_eq!(stem("hissing"), "hiss");
        assert_eq!(stem("failing"), "fail");
        assert_eq!(stem("filing"), "file");
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky");
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("conditional"), "condit");
        assert_eq!(stem("triplicate"), "triplic");
        assert_eq!(stem("hopeful"), "hope");
        assert_eq!(stem("goodness"), "good");
        assert_eq!(stem("revival"), "reviv");
        assert_eq!(stem("allowance"), "allow");
        assert_eq!(stem("inference"), "infer");
        assert_eq!(stem("adjustment"), "adjust");
        assert_eq!(stem("adoption"), "adopt");
        assert_eq!(stem("probate"), "probat");
        assert_eq!(stem("rate"), "rate");
        assert_eq!(stem("cease"), "ceas");
        assert_eq!(stem("controll"), "control");
        assert_eq!(stem("roll"), "roll");
    }

    #[test]
    fn interface_vocabulary_conflation() {
        assert_eq!(stem("departure"), stem("departures"));
        assert_eq!(stem("city"), stem("cities"));
        assert_eq!(stem("location"), stem("locations"));
        assert_eq!(stem("airline"), stem("airlines"));
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
    }

    #[test]
    fn non_alphabetic_untouched() {
        assert_eq!(stem("isbn-10"), "isbn-10");
        assert_eq!(stem("42"), "42");
    }

    #[test]
    fn case_normalized() {
        assert_eq!(stem("Cities"), "citi");
    }

    #[test]
    fn stem_all_maps() {
        assert_eq!(stem_all(["departure", "cities"]), vec!["departur", "citi"]);
    }
}
