//! English stopword list used when building label word vectors.
//!
//! Function words carry no matching signal between labels (`of` in
//! `Class of service` matches `of` in `Type of job` spuriously), so IceQ's
//! label vectors drop them. Two deliberate exceptions: `from` and `to` are
//! NOT stopwords — on query interfaces they are semantically load-bearing
//! direction markers (`From city` vs `To city`, `Price from` vs `Price
//! to`) and are the only signal distinguishing those attribute pairs.

/// Alphabetically sorted stopword list (lowercase).
static STOPWORDS: &[&str] = &[
    "a", "about", "after", "all", "an", "and", "any", "are", "as", "at", "be", "been", "before",
    "between", "but", "by", "can", "do", "does", "each", "enter", "every", "for", "had", "has",
    "have", "here", "how", "i", "if", "in", "into", "is", "it", "its", "may", "more", "most",
    "must", "my", "near", "no", "nor", "not", "now", "of", "on", "only", "or", "other", "our",
    "over", "per", "please", "select", "shall", "should", "since", "some", "such", "than", "that",
    "the", "their", "then", "there", "these", "they", "this", "those", "through", "under", "until",
    "up", "very", "via", "was", "we", "were", "what", "when", "where", "which", "will", "with",
    "within", "without", "would", "you", "your",
];

/// Is `word` (any case) a stopword?
pub fn is_stopword(word: &str) -> bool {
    let lower = word.to_ascii_lowercase();
    STOPWORDS.binary_search(&lower.as_str()).is_ok()
}

/// Remove stopwords from a word list, preserving order.
pub fn remove_stopwords<S: AsRef<str>>(words: &[S]) -> Vec<String> {
    words
        .iter()
        .map(|w| w.as_ref().to_string())
        .filter(|w| !is_stopword(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn detects_stopwords_case_insensitively() {
        assert!(is_stopword("the"));
        assert!(is_stopword("OF"));
        assert!(!is_stopword("From"));
        assert!(!is_stopword("to"));
    }

    #[test]
    fn content_words_pass() {
        assert!(!is_stopword("city"));
        assert!(!is_stopword("airline"));
        assert!(!is_stopword("departure"));
    }

    #[test]
    fn removal_preserves_order() {
        assert_eq!(
            remove_stopwords(&["class", "of", "service"]),
            vec!["class", "service"]
        );
        // `from`/`to` are deliberately NOT stopwords (direction markers)
        assert_eq!(remove_stopwords(&["from", "city"]), vec!["from", "city"]);
    }

    #[test]
    fn all_stopwords_removed_leaves_empty() {
        assert!(remove_stopwords(&["the", "of", "and"]).is_empty());
    }
}
