//! Rule-based part-of-speech tagging in the style of Brill's tagger.
//!
//! The paper (§2.1) tags attribute labels with Brill's transformation-based
//! tagger and then pattern-matches the tag sequence to recognise noun
//! phrases, prepositional phrases, and noun-phrase conjunctions. We implement
//! the same two-stage scheme: an *initial* tagger (lexicon lookup plus
//! morphological suffix heuristics) followed by an ordered list of
//! *contextual transformation rules* that patch tags based on neighbouring
//! tags/words — exactly the architecture of Brill's tagger, with a rule set
//! sized for interface labels and search-snippet sentences.

use crate::token::{Token, TokenKind};

/// Reduced Penn-Treebank-style tagset sufficient for shallow label analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Determiner (`the`, `a`, `any`).
    DT,
    /// Adjective (`first`, `cheap`, `round-trip`).
    JJ,
    /// Singular or mass noun (`city`, `service`).
    NN,
    /// Plural noun (`cities`, `authors`).
    NNS,
    /// Proper noun (`Boston`, `Delta`).
    NNP,
    /// Verb, base form (`depart`, `search`).
    VB,
    /// Verb, gerund (`departing`, `including`).
    VBG,
    /// Verb, past participle / past (`published`, `used`).
    VBN,
    /// Verb, 3rd-person singular present (`is`, `includes`).
    VBZ,
    /// Preposition or subordinating conjunction (`from`, `of`, `in`).
    IN,
    /// Coordinating conjunction (`and`, `or`).
    CC,
    /// The word `to`.
    TO,
    /// Pronoun (`you`, `it`).
    PRP,
    /// Adverb (`very`, `only`).
    RB,
    /// Cardinal number (`42`, `$15,200`).
    CD,
    /// Modal (`can`, `must`).
    MD,
    /// Punctuation or other symbol.
    SYM,
}

impl Tag {
    /// True for tags that may occur inside the body of a noun phrase.
    pub fn is_np_modifier(self) -> bool {
        matches!(
            self,
            Tag::JJ | Tag::NN | Tag::NNP | Tag::CD | Tag::VBG | Tag::VBN
        )
    }

    /// True for noun tags eligible to head a noun phrase.
    pub fn is_noun(self) -> bool {
        matches!(self, Tag::NN | Tag::NNS | Tag::NNP)
    }

    /// True for verb tags.
    pub fn is_verb(self) -> bool {
        matches!(self, Tag::VB | Tag::VBG | Tag::VBN | Tag::VBZ)
    }
}

/// A token paired with its assigned tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tagged {
    /// The underlying token.
    pub token: Token,
    /// The tag assigned by the tagger.
    pub tag: Tag,
}

impl Tagged {
    /// Lowercased token text.
    pub fn lower(&self) -> String {
        self.token.lower()
    }
}

/// Closed-class and high-frequency lexicon: lowercase word → most-likely tag.
///
/// Nouns dominating the query-interface vocabulary are listed explicitly so
/// that verb/noun ambiguous words (`make`, `state`, `type`) receive their
/// label reading by default; contextual rules repair the verb reading where
/// syntax demands it.
static LEXICON: &[(&str, Tag)] = &[
    // determiners
    ("the", Tag::DT),
    ("a", Tag::DT),
    ("an", Tag::DT),
    ("any", Tag::DT),
    ("all", Tag::DT),
    ("this", Tag::DT),
    ("that", Tag::DT),
    ("these", Tag::DT),
    ("those", Tag::DT),
    ("each", Tag::DT),
    ("every", Tag::DT),
    ("some", Tag::DT),
    ("no", Tag::DT),
    ("many", Tag::DT),
    ("several", Tag::DT),
    ("few", Tag::DT),
    ("both", Tag::DT),
    ("popular", Tag::JJ),
    ("available", Tag::JJ),
    ("numerous", Tag::JJ),
    ("various", Tag::JJ),
    ("multiple", Tag::JJ),
    // prepositions
    ("of", Tag::IN),
    ("in", Tag::IN),
    ("on", Tag::IN),
    ("at", Tag::IN),
    ("by", Tag::IN),
    ("for", Tag::IN),
    ("from", Tag::IN),
    ("with", Tag::IN),
    ("within", Tag::IN),
    ("without", Tag::IN),
    ("near", Tag::IN),
    ("between", Tag::IN),
    ("under", Tag::IN),
    ("over", Tag::IN),
    ("per", Tag::IN),
    ("via", Tag::IN),
    ("into", Tag::IN),
    ("as", Tag::IN),
    ("through", Tag::IN),
    ("after", Tag::IN),
    ("before", Tag::IN),
    ("about", Tag::IN),
    ("since", Tag::IN),
    ("until", Tag::IN),
    // conjunctions
    ("and", Tag::CC),
    ("or", Tag::CC),
    ("but", Tag::CC),
    ("nor", Tag::CC),
    // to
    ("to", Tag::TO),
    // pronouns
    ("i", Tag::PRP),
    ("you", Tag::PRP),
    ("he", Tag::PRP),
    ("she", Tag::PRP),
    ("it", Tag::PRP),
    ("we", Tag::PRP),
    ("they", Tag::PRP),
    ("your", Tag::PRP),
    ("their", Tag::PRP),
    ("its", Tag::PRP),
    ("my", Tag::PRP),
    ("our", Tag::PRP),
    // modals
    ("can", Tag::MD),
    ("could", Tag::MD),
    ("will", Tag::MD),
    ("would", Tag::MD),
    ("shall", Tag::MD),
    ("should", Tag::MD),
    ("may", Tag::MD),
    ("might", Tag::MD),
    ("must", Tag::MD),
    // copulas / auxiliaries
    ("is", Tag::VBZ),
    ("are", Tag::VBZ),
    ("was", Tag::VBZ),
    ("were", Tag::VBZ),
    ("be", Tag::VB),
    ("been", Tag::VBN),
    ("being", Tag::VBG),
    ("has", Tag::VBZ),
    ("have", Tag::VB),
    ("had", Tag::VBN),
    ("do", Tag::VB),
    ("does", Tag::VBZ),
    ("did", Tag::VBN),
    // adverbs
    ("not", Tag::RB),
    ("very", Tag::RB),
    ("only", Tag::RB),
    ("also", Tag::RB),
    ("here", Tag::RB),
    ("there", Tag::RB),
    ("now", Tag::RB),
    ("then", Tag::RB),
    ("more", Tag::RB),
    ("most", Tag::RB),
    ("other", Tag::JJ),
    ("such", Tag::JJ),
    // verbs common in labels and snippets
    ("depart", Tag::VB),
    ("departing", Tag::VBG),
    ("arrive", Tag::VB),
    ("arriving", Tag::VBG),
    ("leave", Tag::VB),
    ("leaving", Tag::VBG),
    ("return", Tag::VB),
    ("returning", Tag::VBG),
    ("fly", Tag::VB),
    ("go", Tag::VB),
    ("going", Tag::VBG),
    ("travel", Tag::VB),
    ("search", Tag::VB),
    ("find", Tag::VB),
    ("select", Tag::VB),
    ("choose", Tag::VB),
    ("enter", Tag::VB),
    ("show", Tag::VB),
    ("list", Tag::NN),
    ("include", Tag::VB),
    ("including", Tag::VBG),
    ("published", Tag::VBN),
    ("posted", Tag::VBN),
    ("located", Tag::VBN),
    ("offered", Tag::VBN),
    ("operated", Tag::VBN),
    // adjectives common in labels
    ("first", Tag::JJ),
    ("last", Tag::JJ),
    ("new", Tag::JJ),
    ("used", Tag::JJ),
    ("minimum", Tag::JJ),
    ("maximum", Tag::JJ),
    ("min", Tag::JJ),
    ("max", Tag::JJ),
    ("low", Tag::JJ),
    ("high", Tag::JJ),
    ("cheap", Tag::JJ),
    ("exact", Tag::JJ),
    ("full", Tag::JJ),
    ("total", Tag::JJ),
    ("annual", Tag::JJ),
    ("monthly", Tag::JJ),
    ("preferred", Tag::JJ),
    ("desired", Tag::JJ),
    ("adult", Tag::NN),
    ("one-way", Tag::JJ),
    ("round-trip", Tag::JJ),
    // interface-vocabulary nouns with verb homographs
    ("make", Tag::NN),
    ("model", Tag::NN),
    ("state", Tag::NN),
    ("type", Tag::NN),
    ("name", Tag::NN),
    ("title", Tag::NN),
    ("price", Tag::NN),
    ("cost", Tag::NN),
    ("date", Tag::NN),
    ("time", Tag::NN),
    ("class", Tag::NN),
    ("service", Tag::NN),
    ("city", Tag::NN),
    ("airport", Tag::NN),
    ("airline", Tag::NN),
    ("carrier", Tag::NN),
    ("keyword", Tag::NN),
    ("keywords", Tag::NNS),
    ("zip", Tag::NN),
    ("code", Tag::NN),
    ("salary", Tag::NN),
    ("company", Tag::NN),
    ("job", Tag::NN),
    ("category", Tag::NN),
    ("author", Tag::NN),
    ("publisher", Tag::NN),
    ("isbn", Tag::NN),
    ("subject", Tag::NN),
    ("format", Tag::NN),
    ("edition", Tag::NN),
    ("year", Tag::NN),
    ("mileage", Tag::NN),
    ("color", Tag::NN),
    ("bedrooms", Tag::NNS),
    ("bathrooms", Tag::NNS),
    ("beds", Tag::NNS),
    ("baths", Tag::NNS),
    ("acreage", Tag::NN),
    ("footage", Tag::NN),
    ("square", Tag::JJ),
    ("feet", Tag::NNS),
    ("location", Tag::NN),
    ("industry", Tag::NN),
    ("experience", Tag::NN),
    ("education", Tag::NN),
    ("level", Tag::NN),
    ("passengers", Tag::NNS),
    ("adults", Tag::NNS),
    ("children", Tag::NNS),
    ("infants", Tag::NNS),
    ("departure", Tag::NN),
    ("arrival", Tag::NN),
    ("destination", Tag::NN),
    ("origin", Tag::NN),
    ("trip", Tag::NN),
    ("cabin", Tag::NN),
    ("seat", Tag::NN),
    ("description", Tag::NN),
    ("person", Tag::NN),
    ("people", Tag::NNS),
];

/// Look up `word` (lowercased) in the static lexicon.
fn lexicon_lookup(word: &str) -> Option<Tag> {
    LEXICON.iter().find(|(w, _)| *w == word).map(|(_, t)| *t)
}

/// Initial (pre-contextual) tag for a token.
///
/// Order of evidence: number kind → lexicon → capitalization (proper noun)
/// → morphological suffix → default `NN`, mirroring the lexical stage of
/// Brill's tagger.
fn initial_tag(token: &Token, first_in_sentence: bool) -> Tag {
    if token.kind == TokenKind::Punct {
        return Tag::SYM;
    }
    if token.kind == TokenKind::Number {
        return Tag::CD;
    }
    let lower = token.lower();
    if let Some(tag) = lexicon_lookup(&lower) {
        return tag;
    }
    // A capitalized unknown word mid-sentence is almost certainly a proper
    // noun (instance names like `Boston`, `Delta`, `Toyota`). At sentence
    // start capitalization is uninformative, so fall through to morphology.
    if token.is_capitalized() && !first_in_sentence {
        return Tag::NNP;
    }
    // All-caps acronyms (LAX, BMW, ISBN) are proper nouns anywhere.
    if token.text.len() >= 2 && token.text.chars().all(|c| c.is_ascii_uppercase()) {
        return Tag::NNP;
    }
    suffix_tag(&lower)
}

/// Morphological suffix heuristics for unknown lowercase words.
fn suffix_tag(lower: &str) -> Tag {
    let n = lower.len();
    if n > 4 && lower.ends_with("ing") {
        return Tag::VBG;
    }
    if n > 3 && lower.ends_with("ed") {
        return Tag::VBN;
    }
    if n > 3 && lower.ends_with("ly") {
        return Tag::RB;
    }
    for adj_suffix in [
        "able", "ible", "ous", "ive", "ful", "less", "ic", "al", "est",
    ] {
        if n > adj_suffix.len() + 2 && lower.ends_with(adj_suffix) {
            return Tag::JJ;
        }
    }
    if n > 3
        && lower.ends_with('s')
        && !lower.ends_with("ss")
        && !lower.ends_with("us")
        && !lower.ends_with("is")
    {
        return Tag::NNS;
    }
    Tag::NN
}

/// Context condition of a transformation rule.
#[derive(Debug, Clone, Copy)]
enum Cond {
    /// The preceding token has this tag.
    PrevTag(Tag),
    /// The following token has this tag.
    NextTag(Tag),
}

/// A Brill-style transformation: retag `from` → `to` when `cond` holds.
#[derive(Debug, Clone, Copy)]
struct Rule {
    from: Tag,
    to: Tag,
    cond: Cond,
}

/// The ordered contextual rule list. Applied once each, in order, over the
/// whole sequence (the standard Brill application regime).
static RULES: &[Rule] = &[
    // "to depart": base verb after TO.
    Rule {
        from: Tag::NN,
        to: Tag::VB,
        cond: Cond::PrevTag(Tag::TO),
    },
    // "must enter": base verb after a modal.
    Rule {
        from: Tag::NN,
        to: Tag::VB,
        cond: Cond::PrevTag(Tag::MD),
    },
    // "the make", "a return": noun reading after a determiner.
    Rule {
        from: Tag::VB,
        to: Tag::NN,
        cond: Cond::PrevTag(Tag::DT),
    },
    Rule {
        from: Tag::VBG,
        to: Tag::NN,
        cond: Cond::PrevTag(Tag::DT),
    },
    // "used cars": participle directly before a noun acts as a modifier; we
    // retag to JJ so NP chunking treats it uniformly.
    Rule {
        from: Tag::VBN,
        to: Tag::JJ,
        cond: Cond::NextTag(Tag::NN),
    },
    Rule {
        from: Tag::VBN,
        to: Tag::JJ,
        cond: Cond::NextTag(Tag::NNS),
    },
    // "departing city", "arriving airport": gerund before noun is a modifier.
    Rule {
        from: Tag::VBG,
        to: Tag::JJ,
        cond: Cond::NextTag(Tag::NN),
    },
    Rule {
        from: Tag::VBG,
        to: Tag::JJ,
        cond: Cond::NextTag(Tag::NNS),
    },
    // Sentence-initial imperative verbs in labels: "Depart from", "Fly to".
    // An unknown first word tagged NN followed by a preposition or TO is
    // usually an imperative verb in interface labels — but only if the word
    // is a known verb; handled by lexicon. Here: "return date" keeps noun.
    // "is" before a determiner: keep.
    // Pronoun possessives before nouns are fine as PRP.
    // "first name or last name": `last` lexicon JJ already.
    // `such` before DT? no-op.
    // "no" before results: determiner already.
    // "of" is IN already.
    // CD before NN stays CD (e.g. "2 bedrooms").
    // Retag NNP to NN when the whole input is a label starting the sequence
    // and the word is in the lexicon lowercased — handled pre-hoc because
    // initial_tag consults the lexicon before capitalization.
    // "service class" vs "class of service": nothing to do.
    // An IN at the very start followed by a noun is the prepositional-label
    // pattern; no retag needed.
    // "Published after": participle at label start stays VBN via the
    // lexicon; no First-position rule is needed (and one would wrongly
    // retag `used cars`).
];

/// Does `cond` hold for position `i` in `tagged`?
fn cond_holds(tagged: &[Tagged], i: usize, cond: Cond) -> bool {
    match cond {
        Cond::PrevTag(t) => i
            .checked_sub(1)
            .and_then(|p| tagged.get(p))
            .is_some_and(|p| p.tag == t),
        Cond::NextTag(t) => i + 1 < tagged.len() && tagged[i + 1].tag == t,
    }
}

/// Tag a token sequence.
///
/// `first_in_sentence` describes whether the first token starts a sentence
/// (true for attribute labels and for snippet sentences).
pub fn tag_tokens(tokens: &[Token]) -> Vec<Tagged> {
    let mut tagged: Vec<Tagged> = tokens
        .iter()
        .enumerate()
        .map(|(i, t)| Tagged {
            token: t.clone(),
            tag: initial_tag(t, i == 0),
        })
        .collect();
    for rule in RULES {
        for i in 0..tagged.len() {
            if tagged[i].tag == rule.from && cond_holds(&tagged, i, rule.cond) {
                tagged[i].tag = rule.to;
            }
        }
    }
    tagged
}

/// Tokenize and tag `text` in one call.
pub fn tag(text: &str) -> Vec<Tagged> {
    tag_tokens(&crate::token::tokenize(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(text: &str) -> Vec<Tag> {
        tag(text).into_iter().map(|t| t.tag).collect()
    }

    #[test]
    fn simple_noun_phrase() {
        assert_eq!(tags("Departure city"), vec![Tag::NN, Tag::NN]);
    }

    #[test]
    fn prepositional_label() {
        assert_eq!(tags("From city"), vec![Tag::IN, Tag::NN]);
        assert_eq!(tags("from"), vec![Tag::IN]);
    }

    #[test]
    fn verb_phrase_label() {
        assert_eq!(tags("Depart from"), vec![Tag::VB, Tag::IN]);
    }

    #[test]
    fn np_with_pp_postmodifier() {
        assert_eq!(tags("Class of service"), vec![Tag::NN, Tag::IN, Tag::NN]);
        assert_eq!(tags("Type of job"), vec![Tag::NN, Tag::IN, Tag::NN]);
    }

    #[test]
    fn conjunction_label() {
        assert_eq!(
            tags("First name or last name"),
            vec![Tag::JJ, Tag::NN, Tag::CC, Tag::JJ, Tag::NN]
        );
    }

    #[test]
    fn noun_verb_homographs_prefer_noun_in_labels() {
        assert_eq!(tags("Make"), vec![Tag::NN]);
        assert_eq!(tags("State"), vec![Tag::NN]);
        assert_eq!(tags("the make"), vec![Tag::DT, Tag::NN]);
    }

    #[test]
    fn to_triggers_base_verb() {
        // "to depart" — depart is in the lexicon as VB, rule is belt and
        // braces for unknown nouns after TO.
        assert_eq!(tags("to depart"), vec![Tag::TO, Tag::VB]);
        assert_eq!(tags("to flingle"), vec![Tag::TO, Tag::VB]);
    }

    #[test]
    fn numbers_are_cd() {
        assert_eq!(tags("2 bedrooms"), vec![Tag::CD, Tag::NNS]);
        assert_eq!(tags("$15,200"), vec![Tag::CD]);
    }

    #[test]
    fn capitalized_mid_sentence_is_proper() {
        let t = tag("flights from Boston");
        assert_eq!(t[2].tag, Tag::NNP);
    }

    #[test]
    fn acronyms_are_proper_even_at_start() {
        assert_eq!(tags("LAX"), vec![Tag::NNP]);
        assert_eq!(tags("ISBN number")[0], Tag::NN); // isbn in lexicon, lowercased match
    }

    #[test]
    fn suffix_heuristics() {
        assert_eq!(tags("quickly"), vec![Tag::RB]);
        assert_eq!(tags("affordable"), vec![Tag::JJ]);
        assert_eq!(tags("listings"), vec![Tag::NNS]);
        assert_eq!(tags("booking")[0], Tag::VBG);
    }

    #[test]
    fn participle_modifier_becomes_adjective() {
        // "used cars" → JJ NNS via the VBN→JJ/NextTag rule (lexicon already
        // has used as JJ; test with an unknown -ed word).
        assert_eq!(tags("refurbished cars"), vec![Tag::JJ, Tag::NNS]);
    }

    #[test]
    fn label_initial_participle_stays_vbn() {
        assert_eq!(tags("Published after"), vec![Tag::VBN, Tag::IN]);
    }

    #[test]
    fn gerund_before_noun_is_modifier() {
        assert_eq!(tags("departing city"), vec![Tag::JJ, Tag::NN]);
    }

    #[test]
    fn punctuation_is_sym() {
        assert_eq!(tags("city :"), vec![Tag::NN, Tag::SYM]);
    }

    #[test]
    fn empty_sequence() {
        assert!(tag("").is_empty());
    }
}
