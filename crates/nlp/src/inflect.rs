//! English noun pluralisation and singularisation.
//!
//! The extraction patterns of Fig. 4 need the plural form of the label's
//! head noun (`city` → `cities` for the cue phrase *departure cities such
//! as*). A rule-based inflector with an irregular-form table covers the
//! vocabulary of query-interface labels.

/// Irregular singular → plural pairs (also used in reverse).
static IRREGULAR: &[(&str, &str)] = &[
    ("man", "men"),
    ("woman", "women"),
    ("child", "children"),
    ("person", "people"),
    ("foot", "feet"),
    ("tooth", "teeth"),
    ("goose", "geese"),
    ("mouse", "mice"),
    ("criterion", "criteria"),
    ("datum", "data"),
    ("medium", "media"),
    ("index", "indices"),
    ("axis", "axes"),
    ("analysis", "analyses"),
    ("basis", "bases"),
    ("life", "lives"),
    ("leaf", "leaves"),
    ("shelf", "shelves"),
    ("half", "halves"),
    ("wife", "wives"),
    ("knife", "knives"),
];

/// Words identical in singular and plural.
static INVARIANT: &[&str] = &[
    "series",
    "species",
    "aircraft",
    "luggage",
    "information",
    "news",
    "equipment",
    "furniture",
    "real estate",
    "software",
];

fn is_vowel(c: u8) -> bool {
    matches!(c, b'a' | b'e' | b'i' | b'o' | b'u')
}

/// Pluralise a singular English noun (lowercase in, lowercase out).
///
/// Already-plural inputs are returned unchanged when detectable (`cities`,
/// `children`); this makes the function idempotent for the cases the cue
/// phrases produce.
///
/// ```
/// use webiq_nlp::inflect::pluralize;
/// assert_eq!(pluralize("city"), "cities");
/// assert_eq!(pluralize("class"), "classes");
/// assert_eq!(pluralize("person"), "people");
/// ```
pub fn pluralize(word: &str) -> String {
    let w = word.to_ascii_lowercase();
    if w.is_empty() {
        return w;
    }
    if INVARIANT.contains(&w.as_str()) {
        return w;
    }
    if let Some((_, plural)) = IRREGULAR.iter().find(|(s, _)| *s == w) {
        return (*plural).to_string();
    }
    // Already plural (irregular plural or regular -s that singularizes back).
    if IRREGULAR.iter().any(|(_, p)| *p == w) || (w.ends_with('s') && is_plural(&w)) {
        return w;
    }
    if w.ends_with("ch")
        || w.ends_with("sh")
        || w.ends_with('x')
        || w.ends_with('s')
        || w.ends_with('z')
    {
        return format!("{w}es");
    }
    if let Some(stem) = w.strip_suffix('y') {
        if stem.as_bytes().last().is_some_and(|&c| !is_vowel(c)) {
            return format!("{stem}ies");
        }
    }
    if w.strip_suffix('o')
        .is_some_and(|stem| stem.as_bytes().last().is_some_and(|&c| !is_vowel(c)))
    {
        // tomato → tomatoes; but many -o words take plain s (photos, autos).
        if matches!(
            w.as_str(),
            "tomato" | "potato" | "hero" | "echo" | "veto" | "cargo"
        ) {
            return format!("{w}es");
        }
        return format!("{w}s");
    }
    format!("{w}s")
}

/// Singularise a plural English noun (lowercase in, lowercase out).
/// Non-plural inputs are returned unchanged.
pub fn singularize(word: &str) -> String {
    let w = word.to_ascii_lowercase();
    if w.is_empty() || INVARIANT.contains(&w.as_str()) {
        return w;
    }
    if let Some((singular, _)) = IRREGULAR.iter().find(|(_, p)| *p == w) {
        return (*singular).to_string();
    }
    let n = w.len();
    if n > 3 {
        if let Some(stem) = w.strip_suffix("ies") {
            // cities → city, but movies → movie (vowel before the -ies).
            if stem.as_bytes().last().is_some_and(|&c| !is_vowel(c)) {
                return format!("{stem}y");
            }
            return format!("{stem}ie");
        }
    }
    if n > 4 {
        if let Some(stem) = w.strip_suffix("es") {
            if stem.ends_with("ch")
                || stem.ends_with("sh")
                || stem.ends_with('x')
                || stem.ends_with('s')
                || stem.ends_with('z')
            {
                return stem.to_string();
            }
        }
    }
    if n > 3 && !w.ends_with("ss") && !w.ends_with("us") && !w.ends_with("is") {
        if let Some(stem) = w.strip_suffix('s') {
            return stem.to_string();
        }
    }
    w
}

/// Heuristic plural detection: true when singularising changes the word.
pub fn is_plural(word: &str) -> bool {
    let w = word.to_ascii_lowercase();
    if IRREGULAR.iter().any(|(_, p)| *p == w) {
        return true;
    }
    singularize(&w) != w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_s() {
        assert_eq!(pluralize("author"), "authors");
        assert_eq!(pluralize("airline"), "airlines");
        assert_eq!(pluralize("publisher"), "publishers");
    }

    #[test]
    fn sibilant_es() {
        assert_eq!(pluralize("class"), "classes");
        assert_eq!(pluralize("branch"), "branches");
        assert_eq!(pluralize("box"), "boxes");
    }

    #[test]
    fn consonant_y_to_ies() {
        assert_eq!(pluralize("city"), "cities");
        assert_eq!(pluralize("company"), "companies");
        assert_eq!(pluralize("category"), "categories");
    }

    #[test]
    fn vowel_y_plain_s() {
        assert_eq!(pluralize("day"), "days");
        assert_eq!(pluralize("key"), "keys");
    }

    #[test]
    fn o_endings() {
        assert_eq!(pluralize("tomato"), "tomatoes");
        assert_eq!(pluralize("auto"), "autos");
        assert_eq!(pluralize("photo"), "photos");
    }

    #[test]
    fn irregulars_both_ways() {
        assert_eq!(pluralize("person"), "people");
        assert_eq!(pluralize("child"), "children");
        assert_eq!(singularize("people"), "person");
        assert_eq!(singularize("children"), "child");
        assert_eq!(singularize("feet"), "foot");
    }

    #[test]
    fn invariants() {
        assert_eq!(pluralize("series"), "series");
        assert_eq!(singularize("series"), "series");
    }

    #[test]
    fn pluralize_is_idempotent_on_plurals() {
        assert_eq!(pluralize("cities"), "cities");
        assert_eq!(pluralize("children"), "children");
        assert_eq!(pluralize("authors"), "authors");
    }

    #[test]
    fn singularize_regular() {
        assert_eq!(singularize("cities"), "city");
        assert_eq!(singularize("classes"), "class");
        assert_eq!(singularize("authors"), "author");
        assert_eq!(singularize("boxes"), "box");
    }

    #[test]
    fn singularize_leaves_non_plurals() {
        assert_eq!(singularize("class"), "class");
        assert_eq!(singularize("bus"), "bus");
        assert_eq!(singularize("analysis"), "analysis");
        assert_eq!(singularize("gas"), "gas");
    }

    #[test]
    fn plurality_detection() {
        assert!(is_plural("cities"));
        assert!(is_plural("people"));
        assert!(!is_plural("city"));
        assert!(!is_plural("class"));
    }

    #[test]
    fn empty_word() {
        assert_eq!(pluralize(""), "");
        assert_eq!(singularize(""), "");
    }

    #[test]
    fn case_is_normalized() {
        assert_eq!(pluralize("City"), "cities");
    }
}
