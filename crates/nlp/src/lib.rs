//! # webiq-nlp — shallow NLP substrate for WebIQ
//!
//! The WebIQ paper (ICDE 2006) performs *shallow syntactic analysis* of
//! query-interface attribute labels: Brill's part-of-speech tagging followed
//! by pattern matching over the tag sequence to recognise noun phrases,
//! prepositional phrases, verb phrases, and noun-phrase conjunctions
//! (§2.1). This crate provides that analysis plus the supporting machinery:
//!
//! - [`token`] — word/number/punctuation tokenizer and sentence splitter;
//! - [`pos`] — a Brill-style rule-based POS tagger (lexicon + suffix
//!   heuristics + contextual transformation rules);
//! - [`chunk`] — the noun-phrase chunker and label-form classifier;
//! - [`inflect`] — noun pluralisation for building cue phrases
//!   (`departure city` → `departure cities such as`);
//! - [`stem`] — Porter stemming for IceQ label vectors;
//! - [`stopwords`] — the stopword filter for label vectors.
//!
//! Everything is deterministic, allocation-light, and dependency-free.
#![forbid(unsafe_code)]

pub mod chunk;
pub mod inflect;
pub mod pos;
pub mod stem;
pub mod stopwords;
pub mod token;

pub use chunk::{classify_label, LabelForm, NounPhrase};
pub use pos::{tag, Tag, Tagged};
pub use token::{tokenize, words_lower, Token, TokenKind};
