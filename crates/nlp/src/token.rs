//! Word- and sentence-level tokenization.
//!
//! The tokenizer is deliberately simple: WebIQ only needs shallow analysis of
//! short attribute labels ("Departure city", "Class of service") and of
//! search-engine result snippets, both of which are plain English text with
//! light punctuation. Tokens preserve the original spelling; callers decide
//! when to lowercase.

/// The kind of a lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An alphabetic word, possibly with internal apostrophes or hyphens
    /// (`"o'hare"`, `"twenty-one"`).
    Word,
    /// A number, possibly with decimal point, commas, or a leading `$`
    /// (`"1,200"`, `"$15.99"`, `"42"`).
    Number,
    /// A single punctuation character (`","`, `"."`, `"("`, ...).
    Punct,
}

/// A token: a span of the input with a classified kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text as it appeared in the input.
    pub text: String,
    /// Lexical class of the token.
    pub kind: TokenKind,
}

impl Token {
    /// Convenience constructor used heavily in tests.
    pub fn new(text: impl Into<String>, kind: TokenKind) -> Self {
        Token {
            text: text.into(),
            kind,
        }
    }

    /// The token text lowercased (ASCII).
    pub fn lower(&self) -> String {
        self.text.to_ascii_lowercase()
    }

    /// True if this token is a word token.
    pub fn is_word(&self) -> bool {
        self.kind == TokenKind::Word
    }

    /// True if this token is a number token.
    pub fn is_number(&self) -> bool {
        self.kind == TokenKind::Number
    }

    /// True if the first character is an ASCII uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
    }
}

/// Tokenize `text` into words, numbers, and punctuation.
///
/// Rules:
/// - runs of alphabetic characters form a [`TokenKind::Word`]; internal `'`
///   and `-` are kept when flanked by letters (`"first-class"` is one word);
/// - a digit run, optionally with `,`-grouped thousands, a decimal part, and
///   a leading `$`, forms a [`TokenKind::Number`];
/// - everything else that is not whitespace becomes a single-character
///   [`TokenKind::Punct`].
pub fn tokenize(text: &str) -> Vec<Token> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() {
            let start = i;
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c.is_alphabetic() {
                    i += 1;
                } else if (c == '\'' || c == '-')
                    && i + 1 < chars.len()
                    && chars[i + 1].is_alphabetic()
                {
                    i += 2;
                } else {
                    break;
                }
            }
            out.push(Token::new(
                chars[start..i].iter().collect::<String>(),
                TokenKind::Word,
            ));
        } else if c.is_ascii_digit() || (c == '$' && peek_digit(&chars, i + 1)) {
            let start = i;
            if c == '$' {
                i += 1;
            }
            i = consume_number(&chars, i);
            out.push(Token::new(
                chars[start..i].iter().collect::<String>(),
                TokenKind::Number,
            ));
        } else {
            out.push(Token::new(c.to_string(), TokenKind::Punct));
            i += 1;
        }
    }
    out
}

fn peek_digit(chars: &[char], i: usize) -> bool {
    chars.get(i).is_some_and(char::is_ascii_digit)
}

/// Consume a digit run starting at `i`, allowing `,`-grouping and one `.`
/// decimal part; returns the index one past the number.
fn consume_number(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_digit() {
            i += 1;
        } else if (c == ',' || c == '.') && peek_digit(chars, i + 1) {
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Tokenize and lowercase word/number tokens, dropping punctuation.
///
/// This is the normalization used for bag-of-words label vectors and for
/// indexing documents in the Surface-Web simulator.
pub fn words_lower(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Punct)
        .map(|t| t.lower())
        .collect()
}

/// Split text into sentences on `.`, `!`, `?` followed by whitespace or end.
///
/// Abbreviation handling is minimal (single-letter abbreviations like
/// `"U.S."` do not split); snippet text in the simulator is generated with
/// clean sentence boundaries so this is sufficient.
pub fn sentences(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'.' || b == b'!' || b == b'?' {
            let at_end = i + 1 >= bytes.len();
            let next_ws = !at_end && bytes[i + 1].is_ascii_whitespace();
            // "U.S." style: previous char is a single capital letter.
            let abbrev = b == b'.'
                && i.checked_sub(1)
                    .and_then(|p| bytes.get(p))
                    .is_some_and(u8::is_ascii_uppercase)
                && !i
                    .checked_sub(2)
                    .and_then(|p| bytes.get(p))
                    .is_some_and(u8::is_ascii_alphabetic);
            if (at_end || next_ws) && !abbrev {
                let s = text[start..=i].trim();
                if !s.is_empty() {
                    out.push(s);
                }
                start = i + 1;
            }
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(String, TokenKind)> {
        tokenize(text)
            .into_iter()
            .map(|t| (t.text, t.kind))
            .collect()
    }

    #[test]
    fn tokenizes_plain_words() {
        assert_eq!(
            kinds("Departure city"),
            vec![
                ("Departure".into(), TokenKind::Word),
                ("city".into(), TokenKind::Word)
            ]
        );
    }

    #[test]
    fn keeps_internal_hyphen_and_apostrophe() {
        assert_eq!(
            kinds("first-class o'hare"),
            vec![
                ("first-class".into(), TokenKind::Word),
                ("o'hare".into(), TokenKind::Word)
            ]
        );
    }

    #[test]
    fn trailing_hyphen_is_punct() {
        assert_eq!(
            kinds("well- done"),
            vec![
                ("well".into(), TokenKind::Word),
                ("-".into(), TokenKind::Punct),
                ("done".into(), TokenKind::Word)
            ]
        );
    }

    #[test]
    fn numbers_with_grouping_and_decimals() {
        assert_eq!(
            kinds("1,200 3.14 42"),
            vec![
                ("1,200".into(), TokenKind::Number),
                ("3.14".into(), TokenKind::Number),
                ("42".into(), TokenKind::Number)
            ]
        );
    }

    #[test]
    fn monetary_values_are_single_number_tokens() {
        assert_eq!(
            kinds("$15,200"),
            vec![("$15,200".into(), TokenKind::Number)]
        );
        // Bare '$' with no digit stays punctuation.
        assert_eq!(
            kinds("$ 15"),
            vec![
                ("$".into(), TokenKind::Punct),
                ("15".into(), TokenKind::Number)
            ]
        );
    }

    #[test]
    fn punctuation_is_split_per_character() {
        assert_eq!(
            kinds("Boston, Chicago, and LAX."),
            vec![
                ("Boston".into(), TokenKind::Word),
                (",".into(), TokenKind::Punct),
                ("Chicago".into(), TokenKind::Word),
                (",".into(), TokenKind::Punct),
                ("and".into(), TokenKind::Word),
                ("LAX".into(), TokenKind::Word),
                (".".into(), TokenKind::Punct),
            ]
        );
    }

    #[test]
    fn trailing_period_not_part_of_number() {
        assert_eq!(
            kinds("price is 42."),
            vec![
                ("price".into(), TokenKind::Word),
                ("is".into(), TokenKind::Word),
                ("42".into(), TokenKind::Number),
                (".".into(), TokenKind::Punct),
            ]
        );
    }

    #[test]
    fn words_lower_drops_punct() {
        assert_eq!(words_lower("From City:"), vec!["from", "city"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(words_lower("   ").is_empty());
        assert!(sentences("").is_empty());
    }

    #[test]
    fn splits_sentences() {
        let s = sentences("Fly from Boston. Airlines such as Delta operate there! Really?");
        assert_eq!(
            s,
            vec![
                "Fly from Boston.",
                "Airlines such as Delta operate there!",
                "Really?"
            ]
        );
    }

    #[test]
    fn sentence_without_terminator() {
        assert_eq!(sentences("no terminator here"), vec!["no terminator here"]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = sentences("Flights within the U.S. are cheap. Book now.");
        assert_eq!(s, vec!["Flights within the U.S. are cheap.", "Book now."]);
    }

    #[test]
    fn capitalization_check() {
        assert!(Token::new("Boston", TokenKind::Word).is_capitalized());
        assert!(!Token::new("boston", TokenKind::Word).is_capitalized());
    }
}
