//! Property-based tests for the NLP substrate.

use webiq_nlp::{chunk, inflect, pos, stem, stopwords, token};
use webiq_rng::prop;

/// Tokenization never panics and never produces empty tokens.
#[test]
fn tokenize_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(prop::any_char(), 0, 200);
        for t in token::tokenize(&s) {
            assert!(!t.text.is_empty());
        }
    });
}

/// Word tokens contain no whitespace.
#[test]
fn tokens_have_no_whitespace() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,.$-"),
            0,
            120,
        );
        for t in token::tokenize(&s) {
            assert!(!t.text.chars().any(char::is_whitespace), "token {t:?}");
        }
    });
}

/// Tagging assigns exactly one tag per token.
#[test]
fn tagging_is_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ,.'"),
            0,
            120,
        );
        let toks = token::tokenize(&s);
        let tagged = pos::tag_tokens(&toks);
        assert_eq!(toks.len(), tagged.len());
    });
}

/// Pluralize then singularize round-trips for regular lowercase nouns
/// that are not already plural and avoid ambiguous endings.
#[test]
fn plural_roundtrip() {
    prop::cases(prop::CASES * 4, |rng| {
        let w = rng.gen_string(prop::lower(), 3, 10);
        if inflect::is_plural(&w) {
            return;
        }
        // Endings whose plural is genuinely ambiguous to invert in English
        // (tie/ties vs. fly/flies; potato/potatoes vs. auto/autos) or that
        // produce -is/-us plurals the singularizer deliberately protects
        // (analysis, bus).
        if w.ends_with('s') || w.ends_with('o') {
            return;
        }
        if w.ends_with("ie") || w.ends_with('i') || w.ends_with('u') {
            return;
        }
        // sibilant+e endings collide with sibilant -es plurals (axe/axes vs.
        // box/boxes), another genuine English ambiguity.
        if ["xe", "se", "ze", "che", "she"]
            .iter()
            .any(|s| w.ends_with(s))
        {
            return;
        }
        let p = inflect::pluralize(&w);
        assert_eq!(inflect::singularize(&p), w);
    });
}

/// Pluralisation is idempotent (for realistic noun lengths; one- and
/// two-letter "nouns" like `a` are out of scope).
#[test]
fn plural_idempotent() {
    prop::cases(prop::CASES * 4, |rng| {
        let w = rng.gen_string(prop::lower(), 3, 12);
        // Words ending in i/u pluralise to -is/-us forms the singularizer
        // deliberately refuses to touch (analysis, bus), defeating the
        // already-plural detection on the second application.
        if w.ends_with('i') || w.ends_with('u') {
            return;
        }
        let once = inflect::pluralize(&w);
        let twice = inflect::pluralize(&once);
        assert_eq!(once, twice);
    });
}

/// Stemming never grows a word and is idempotent-ish: stemming a stem
/// never panics and stays ASCII.
#[test]
fn stem_never_grows() {
    prop::cases(prop::CASES, |rng| {
        let w = rng.gen_string(prop::lower(), 1, 20);
        let s = stem::stem(&w);
        assert!(s.len() <= w.len());
        assert!(s.is_ascii());
        let _ = stem::stem(&s);
    });
}

/// classify_label is total (never panics) on arbitrary label-ish text.
#[test]
fn classify_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 :*()/-"),
            0,
            60,
        );
        let _ = chunk::classify_label(&s);
    });
}

/// Labels made of a single known noun always classify as a noun phrase
/// headed by that noun.
#[test]
fn single_noun_is_np() {
    let nouns = [
        "city",
        "airline",
        "author",
        "price",
        "company",
        "publisher",
        "salary",
        "mileage",
    ];
    for w in nouns {
        match chunk::classify_label(w) {
            chunk::LabelForm::NounPhrase(np) => assert_eq!(np.head_word(), w),
            other => panic!("expected NP for {w}, got {other:?}"),
        }
    }
}

/// Stopword removal output never contains a stopword and never reorders.
#[test]
fn stopword_filter_sound() {
    prop::cases(prop::CASES, |rng| {
        let ws = prop::string_vec(rng, prop::lower(), 0, 11, 1, 8);
        let out = stopwords::remove_stopwords(&ws);
        for w in &out {
            assert!(!stopwords::is_stopword(w));
        }
        // order preserved: `out` is a subsequence of `ws`
        let mut it = ws.iter();
        for w in &out {
            assert!(it.any(|x| x == w));
        }
    });
}
