//! Property-based tests for the NLP substrate.

use proptest::prelude::*;
use webiq_nlp::{chunk, inflect, pos, stem, stopwords, token};

proptest! {
    /// Tokenization never panics and never produces empty tokens.
    #[test]
    fn tokenize_total(s in ".{0,200}") {
        for t in token::tokenize(&s) {
            prop_assert!(!t.text.is_empty());
        }
    }

    /// Word tokens contain no whitespace.
    #[test]
    fn tokens_have_no_whitespace(s in "[a-zA-Z0-9 ,.$-]{0,120}") {
        for t in token::tokenize(&s) {
            prop_assert!(!t.text.chars().any(char::is_whitespace), "token {:?}", t);
        }
    }

    /// Tagging assigns exactly one tag per token.
    #[test]
    fn tagging_is_total(s in "[a-zA-Z ,.']{0,120}") {
        let toks = token::tokenize(&s);
        let tagged = pos::tag_tokens(&toks);
        prop_assert_eq!(toks.len(), tagged.len());
    }

    /// Pluralize then singularize round-trips for regular lowercase nouns
    /// that are not already plural and avoid ambiguous endings.
    #[test]
    fn plural_roundtrip(w in "[a-z]{3,10}") {
        prop_assume!(!inflect::is_plural(&w));
        // Endings whose plural is genuinely ambiguous to invert in English
        // (tie/ties vs. fly/flies; potato/potatoes vs. auto/autos) or that
        // produce -is/-us plurals the singularizer deliberately protects
        // (analysis, bus).
        prop_assume!(!w.ends_with('s') && !w.ends_with('o'));
        prop_assume!(!w.ends_with("ie") && !w.ends_with('i') && !w.ends_with('u'));
        // sibilant+e endings collide with sibilant -es plurals (axe/axes vs.
        // box/boxes), another genuine English ambiguity.
        prop_assume!(!["xe", "se", "ze", "che", "she"].iter().any(|s| w.ends_with(s)));
        let p = inflect::pluralize(&w);
        prop_assert_eq!(inflect::singularize(&p), w);
    }

    /// Pluralisation is idempotent (for realistic noun lengths; one- and
    /// two-letter "nouns" like `a` are out of scope).
    #[test]
    fn plural_idempotent(w in "[a-z]{3,12}") {
        // Words ending in i/u pluralise to -is/-us forms the singularizer
        // deliberately refuses to touch (analysis, bus), defeating the
        // already-plural detection on the second application.
        prop_assume!(!w.ends_with('i') && !w.ends_with('u'));
        let once = inflect::pluralize(&w);
        let twice = inflect::pluralize(&once);
        prop_assert_eq!(once, twice);
    }

    /// Stemming never grows a word and is idempotent-ish: stemming a stem
    /// never panics and stays ASCII.
    #[test]
    fn stem_never_grows(w in "[a-z]{1,20}") {
        let s = stem::stem(&w);
        prop_assert!(s.len() <= w.len());
        prop_assert!(s.is_ascii());
        let _ = stem::stem(&s);
    }

    /// classify_label is total (never panics) on arbitrary label-ish text.
    #[test]
    fn classify_total(s in "[a-zA-Z0-9 :*()/-]{0,60}") {
        let _ = chunk::classify_label(&s);
    }

    /// Labels made of a single known noun always classify as a noun phrase
    /// headed by that noun.
    #[test]
    fn single_noun_is_np(idx in 0usize..8) {
        let nouns = ["city", "airline", "author", "price", "company",
                     "publisher", "salary", "mileage"];
        let w = nouns[idx];
        match chunk::classify_label(w) {
            chunk::LabelForm::NounPhrase(np) => prop_assert_eq!(np.head_word(), w),
            other => prop_assert!(false, "expected NP for {}, got {:?}", w, other),
        }
    }

    /// Stopword removal output never contains a stopword and never reorders.
    #[test]
    fn stopword_filter_sound(ws in proptest::collection::vec("[a-z]{1,8}", 0..12)) {
        let out = stopwords::remove_stopwords(&ws);
        for w in &out {
            prop_assert!(!stopwords::is_stopword(w));
        }
        // order preserved: `out` is a subsequence of `ws`
        let mut it = ws.iter();
        for w in &out {
            prop_assert!(it.any(|x| x == w));
        }
    }
}
