//! Attr-Deep (§4): validate borrowed instances by probing the attribute's
//! own Deep-Web source.
//!
//! To verify that `b` (an instance of attribute B) is also an instance of
//! A, submit A's form with A set to `b` and every other attribute at its
//! default (empty) value, then classify the response page. "If the
//! submission is successful for at least one third of the instances of B,
//! then we assume that all instances of B are instances of A."

use std::collections::BTreeMap;

use webiq_deep::{analyze_response, DeepSource};

use crate::config::WebIQConfig;

/// Result of probing one borrowed attribute's instances.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeOutcome {
    /// Instances actually probed (≤ `probe_limit`).
    pub probed: usize,
    /// Probes whose response page indicated success.
    pub successes: usize,
    /// Whether B's instances were accepted wholesale.
    pub accepted: bool,
}

/// Probe `source` with `target_param` set to each of (up to `probe_limit`
/// of) `instances`; accept all when the success ratio reaches
/// `probe_accept_ratio`.
pub fn validate_borrowed(
    source: &DeepSource,
    target_param: &str,
    instances: &[String],
    cfg: &WebIQConfig,
) -> ProbeOutcome {
    let to_probe: Vec<&String> = instances.iter().take(cfg.probe_limit.max(1)).collect();
    if to_probe.is_empty() {
        return ProbeOutcome {
            probed: 0,
            successes: 0,
            accepted: false,
        };
    }
    let mut successes = 0;
    for instance in &to_probe {
        let mut params = BTreeMap::new();
        params.insert(target_param.to_string(), (*instance).clone());
        let page = source.submit(&params);
        if analyze_response(&page).is_success() {
            successes += 1;
        }
    }
    let ratio = successes as f64 / to_probe.len() as f64;
    ProbeOutcome {
        probed: to_probe.len(),
        successes,
        accepted: ratio >= cfg.probe_accept_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_deep::{ParamDomain, Record, RecordStore, SourceParam};

    fn flight_source() -> DeepSource {
        let cities = ["Chicago", "Boston", "Seattle", "Denver", "Atlanta", "Miami"];
        let mut store = RecordStore::default();
        for (i, from) in cities.iter().enumerate() {
            store.push(Record::new([
                ("from", *from),
                ("to", cities[(i + 1) % cities.len()]),
            ]));
        }
        DeepSource::new(
            "AcmeAir",
            vec![
                SourceParam {
                    name: "from".into(),
                    domain: ParamDomain::Free,
                    required: false,
                },
                SourceParam {
                    name: "to".into(),
                    domain: ParamDomain::Free,
                    required: false,
                },
            ],
            store,
        )
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn cities_accepted_months_rejected() {
        // the §4 motivating example: from=Chicago yields results,
        // from=January does not.
        let src = flight_source();
        let cfg = WebIQConfig::default();
        let cities = validate_borrowed(
            &src,
            "from",
            &strings(&["Chicago", "Boston", "Seattle"]),
            &cfg,
        );
        assert!(cities.accepted, "{cities:?}");
        assert_eq!(cities.successes, 3);

        let months = validate_borrowed(&src, "from", &strings(&["Jan", "Feb", "Mar"]), &cfg);
        assert!(!months.accepted, "{months:?}");
        assert_eq!(months.successes, 0);
    }

    #[test]
    fn one_third_rule() {
        let src = flight_source();
        let cfg = WebIQConfig::default();
        // 1 of 3 valid → ratio 1/3 ≥ 1/3 → accepted
        let mixed = validate_borrowed(&src, "from", &strings(&["Chicago", "Jan", "Feb"]), &cfg);
        assert!(mixed.accepted, "{mixed:?}");
        // 1 of 4 valid → ratio 1/4 < 1/3 → rejected
        let weak = validate_borrowed(
            &src,
            "from",
            &strings(&["Chicago", "Jan", "Feb", "Mar"]),
            &cfg,
        );
        assert!(!weak.accepted, "{weak:?}");
    }

    #[test]
    fn probe_limit_bounds_traffic() {
        let src = flight_source();
        let cfg = WebIQConfig {
            probe_limit: 2,
            ..WebIQConfig::default()
        };
        let many = strings(&["Chicago", "Boston", "Seattle", "Denver", "Atlanta"]);
        let out = validate_borrowed(&src, "from", &many, &cfg);
        assert_eq!(out.probed, 2);
        assert_eq!(src.probe_count(), 2);
    }

    #[test]
    fn empty_instances() {
        let src = flight_source();
        let out = validate_borrowed(&src, "from", &[], &WebIQConfig::default());
        assert!(!out.accepted);
        assert_eq!(out.probed, 0);
    }

    #[test]
    fn flaky_source_degrades_gracefully() {
        let src = flight_source().with_failure_rate(1.0);
        let cfg = WebIQConfig::default();
        let out = validate_borrowed(&src, "from", &strings(&["Chicago", "Boston"]), &cfg);
        assert!(!out.accepted, "{out:?}");
    }
}
