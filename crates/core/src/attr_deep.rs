//! Attr-Deep (§4): validate borrowed instances by probing the attribute's
//! own Deep-Web source.
//!
//! To verify that `b` (an instance of attribute B) is also an instance of
//! A, submit A's form with A set to `b` and every other attribute at its
//! default (empty) value, then classify the response page. "If the
//! submission is successful for at least one third of the instances of B,
//! then we assume that all instances of B are instances of A."

use std::collections::BTreeMap;

use webiq_deep::{analyze_response, DeepSource};
use webiq_prof::Stage;

use crate::config::WebIQConfig;

/// Something a probe submission can be posed to. The plain
/// [`DeepSource`] submits once and classifies the response page; the
/// resilience wrapper ([`crate::resilience::ResilientSource`]) retries
/// server errors with backoff before answering.
pub trait ProbeTarget {
    /// Submit the form once (with whatever internal resilience the
    /// target has) and report whether the response page indicated a
    /// successful, non-empty result.
    fn probe(&self, values: &BTreeMap<String, String>) -> bool;
}

impl ProbeTarget for DeepSource {
    fn probe(&self, values: &BTreeMap<String, String>) -> bool {
        analyze_response(&self.submit(values)).is_success()
    }
}

/// Result of probing one borrowed attribute's instances.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeOutcome {
    /// Instances actually probed (≤ `probe_limit`).
    pub probed: usize,
    /// Probes whose response page indicated success.
    pub successes: usize,
    /// Whether B's instances were accepted wholesale.
    pub accepted: bool,
}

/// Probe `source` with `target_param` set to each of (up to `probe_limit`
/// of) `instances`; accept all when the success ratio reaches
/// `probe_accept_ratio`.
pub fn validate_borrowed<S: ProbeTarget>(
    source: &S,
    target_param: &str,
    instances: &[String],
    cfg: &WebIQConfig,
) -> ProbeOutcome {
    let to_probe: Vec<&String> = instances.iter().take(cfg.probe_limit.max(1)).collect();
    if to_probe.is_empty() {
        return ProbeOutcome {
            probed: 0,
            successes: 0,
            accepted: false,
        };
    }
    let mut successes = 0;
    for instance in &to_probe {
        let mut params = BTreeMap::new();
        params.insert(target_param.to_string(), (*instance).clone());
        if webiq_prof::time(Stage::Probe, || source.probe(&params)) {
            successes += 1;
        }
    }
    let ratio = successes as f64 / to_probe.len() as f64;
    ProbeOutcome {
        probed: to_probe.len(),
        successes,
        accepted: ratio >= cfg.probe_accept_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_deep::{ParamDomain, Record, RecordStore, SourceParam};

    fn flight_source() -> DeepSource {
        let cities = ["Chicago", "Boston", "Seattle", "Denver", "Atlanta", "Miami"];
        let mut store = RecordStore::default();
        for (i, from) in cities.iter().enumerate() {
            store.push(Record::new([
                ("from", *from),
                ("to", cities[(i + 1) % cities.len()]),
            ]));
        }
        DeepSource::new(
            "AcmeAir",
            vec![
                SourceParam {
                    name: "from".into(),
                    domain: ParamDomain::Free,
                    required: false,
                },
                SourceParam {
                    name: "to".into(),
                    domain: ParamDomain::Free,
                    required: false,
                },
            ],
            store,
        )
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn cities_accepted_months_rejected() {
        // the §4 motivating example: from=Chicago yields results,
        // from=January does not.
        let src = flight_source();
        let cfg = WebIQConfig::default();
        let cities = validate_borrowed(
            &src,
            "from",
            &strings(&["Chicago", "Boston", "Seattle"]),
            &cfg,
        );
        assert!(cities.accepted, "{cities:?}");
        assert_eq!(cities.successes, 3);

        let months = validate_borrowed(&src, "from", &strings(&["Jan", "Feb", "Mar"]), &cfg);
        assert!(!months.accepted, "{months:?}");
        assert_eq!(months.successes, 0);
    }

    #[test]
    fn one_third_rule() {
        let src = flight_source();
        let cfg = WebIQConfig::default();
        // 1 of 3 valid → ratio 1/3 ≥ 1/3 → accepted
        let mixed = validate_borrowed(&src, "from", &strings(&["Chicago", "Jan", "Feb"]), &cfg);
        assert!(mixed.accepted, "{mixed:?}");
        // 1 of 4 valid → ratio 1/4 < 1/3 → rejected
        let weak = validate_borrowed(
            &src,
            "from",
            &strings(&["Chicago", "Jan", "Feb", "Mar"]),
            &cfg,
        );
        assert!(!weak.accepted, "{weak:?}");
    }

    #[test]
    fn probe_limit_bounds_traffic() {
        let src = flight_source();
        let cfg = WebIQConfig {
            probe_limit: 2,
            ..WebIQConfig::default()
        };
        let many = strings(&["Chicago", "Boston", "Seattle", "Denver", "Atlanta"]);
        let out = validate_borrowed(&src, "from", &many, &cfg);
        assert_eq!(out.probed, 2);
        assert_eq!(src.probe_count(), 2);
    }

    #[test]
    fn empty_instances() {
        let src = flight_source();
        let out = validate_borrowed(&src, "from", &[], &WebIQConfig::default());
        assert!(!out.accepted);
        assert_eq!(out.probed, 0);
    }

    #[test]
    fn flaky_source_degrades_gracefully() {
        let src = flight_source().with_failure_rate(1.0);
        let cfg = WebIQConfig::default();
        let out = validate_borrowed(&src, "from", &strings(&["Chicago", "Boston"]), &cfg);
        assert!(!out.accepted, "{out:?}");
    }

    #[test]
    fn transient_faults_clear_through_the_resilient_wrapper() {
        use crate::resilience::{Resilience, ResilientSource};
        use webiq_fault::{FaultConfig, FaultPlan, QuotaTracker};

        // Even above a 0.3 transient rate, retries recover every verdict
        // the fault-free source would have produced.
        for rate in [0.35, 0.5] {
            let cfg = WebIQConfig::default();
            let fault = FaultConfig {
                max_attempts: 12,
                retry_budget: 10_000,
                ..FaultConfig::chaos(11, rate)
            };
            let src = flight_source().with_fault_plan(FaultPlan::from_config(&fault));
            let quota = QuotaTracker::new(0);
            let res = Resilience::new(&fault, &quota);
            let wrapped = ResilientSource::new(&src, &res);
            let cities = validate_borrowed(
                &wrapped,
                "from",
                &strings(&["Chicago", "Boston", "Seattle"]),
                &cfg,
            );
            assert!(cities.accepted, "rate {rate}: {cities:?}");
            assert_eq!(cities.successes, 3, "rate {rate}");
            let months = validate_borrowed(&wrapped, "from", &strings(&["Jan", "Feb"]), &cfg);
            assert!(!months.accepted, "rate {rate}: {months:?}");
        }
    }

    #[test]
    fn transient_faults_without_retries_lose_verdicts() {
        use crate::resilience::{Resilience, ResilientSource};
        use webiq_fault::{FaultConfig, FaultPlan, QuotaTracker};

        // the control for the test above: retries disabled, same plan —
        // some probes now fail outright and the item degrades
        let fault = FaultConfig {
            max_attempts: 1,
            ..FaultConfig::chaos(11, 0.9)
        };
        let src = flight_source().with_fault_plan(FaultPlan::from_config(&fault));
        let quota = QuotaTracker::new(0);
        let res = Resilience::new(&fault, &quota);
        let wrapped = ResilientSource::new(&src, &res);
        let cfg = WebIQConfig::default();
        let out = validate_borrowed(
            &wrapped,
            "from",
            &strings(&["Chicago", "Boston", "Seattle", "Denver", "Atlanta", "Miami"]),
            &cfg,
        );
        assert!(out.successes < 6, "{out:?}");
        assert!(res.degraded());
    }
}
