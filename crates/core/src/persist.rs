//! Warm-start glue between acquisition and the persistent knowledge
//! store (`webiq-store`).
//!
//! A run is identified by a *fingerprint*: an FNV-1a hash over
//! everything that determines its acquisition output — the dataset's
//! contents, the domain definition, the component selection, the
//! acquisition-relevant configuration knobs, the resolved fault plan,
//! and the corpus size. Thread count is deliberately excluded: any
//! worker count produces byte-identical output (see DESIGN.md), so a
//! store written at 8 threads must warm-start a 1-thread run. A second
//! run with an identical fingerprint replays the stored instances and
//! counter totals instead of touching an engine; any input change
//! misses and re-acquires cold.

use webiq_data::interface::Dataset;
use webiq_data::DomainDef;
use webiq_fault::FaultConfig;
use webiq_store::WarmRun;
use webiq_trace::{Counter, MetricSet};

use crate::acquire::{Acquisition, AcquisitionReport};
use crate::config::{Components, WebIQConfig};

/// Streaming FNV-1a (64-bit) over the run's identity material.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// A length-prefixed string, so `("ab","c")` and `("a","bc")` feed
    /// distinct byte streams.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.bytes(&[u8::from(v)]);
    }
}

/// The fingerprint identifying one acquisition run's inputs. `fault`
/// must be the *resolved* fault configuration
/// ([`WebIQConfig::resolved_fault`]) so the ambient env knobs are part
/// of the identity, and `corpus_docs` the engine's document count (a
/// cheap proxy for the simulated-Web corpus the run queries).
pub fn run_fingerprint(
    ds: &Dataset,
    def: &DomainDef,
    components: Components,
    cfg: &WebIQConfig,
    fault: &FaultConfig,
    corpus_docs: u64,
) -> u64 {
    let mut h = Fnv::new();
    h.str(&ds.domain);
    h.u64(ds.interfaces.len() as u64);
    for iface in &ds.interfaces {
        h.u64(iface.id as u64);
        h.str(&iface.site);
        h.u64(iface.attributes.len() as u64);
        for a in &iface.attributes {
            h.str(&a.name);
            h.str(&a.label);
            h.str(&a.concept);
            h.u64(a.instances.len() as u64);
            for v in &a.instances {
                h.str(v);
            }
            match &a.default {
                Some(d) => {
                    h.bool(true);
                    h.str(d);
                }
                None => h.bool(false),
            }
        }
    }
    h.str(def.object);
    h.u64(def.domain_terms.len() as u64);
    for t in def.domain_terms {
        h.str(t);
    }
    h.bool(components.surface);
    h.bool(components.attr_deep);
    h.bool(components.attr_surface);
    h.u64(cfg.k as u64);
    h.u64(cfg.snippets_per_query as u64);
    h.u64(cfg.scope_keywords as u64);
    h.u64(cfg.sibling_keywords as u64);
    h.f64(cfg.min_validation_score);
    h.bool(cfg.outlier_phase);
    h.str(&format!("{:?}", cfg.discordancy));
    h.bool(cfg.use_pmi);
    h.f64(cfg.borrow_label_sim);
    h.f64(cfg.borrow_sibling_dom_sim);
    h.u64(cfg.probe_limit as u64);
    h.f64(cfg.probe_accept_ratio);
    h.bool(cfg.borrow_prefilter);
    h.bool(cfg.info_gain_thresholds);
    // The resolved fault plan changes outcomes (degraded attributes,
    // retry counts), so it is identity material; its Debug rendering
    // covers every knob without chasing the struct's evolution here.
    h.str(&format!("{fault:?}"));
    h.u64(corpus_docs);
    h.0
}

/// The merged counter totals of a run as stable `(name, value)` pairs —
/// the payload of the store's `RunComplete` commit marker.
pub fn counter_pairs(m: &MetricSet) -> Vec<(String, u64)> {
    m.nonzero()
        .into_iter()
        .map(|(c, v)| (c.name().to_string(), v))
        .collect()
}

/// Rebuild a counter set from stored `(name, value)` pairs. Names that
/// no longer exist are skipped — a store written by an older build
/// degrades to partial totals instead of failing the warm start.
pub fn metrics_from_pairs(pairs: &[(String, u64)]) -> MetricSet {
    let mut m = MetricSet::new();
    for (name, v) in pairs {
        if let Some(c) = Counter::from_name(name) {
            m.add(c, *v);
        }
    }
    m
}

/// Rebuild a full [`Acquisition`] from a stored warm run: acquired
/// instances and degraded flags from the instance records, the report
/// from the stored counter totals — the same
/// [`AcquisitionReport::from_metrics`] derivation the cold run uses, so
/// the two reports agree field for field (wall-clock `secs` stay zero:
/// no time was spent).
pub fn rebuild_acquisition(warm: &WarmRun) -> Acquisition {
    let mut acq = Acquisition::default();
    for (iface, attr, values, degraded) in &warm.attrs {
        let r = (*iface as usize, *attr as usize);
        if *degraded {
            acq.degraded.insert(r);
        }
        if !values.is_empty() {
            acq.acquired.insert(r, values.clone());
        }
    }
    acq.report = AcquisitionReport::from_metrics(&metrics_from_pairs(&warm.counters));
    acq
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_data::{generate_domain, kb, GenOptions};

    fn fingerprint_of(domain: &str, cfg: &WebIQConfig) -> u64 {
        let def = kb::domain(domain).expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        run_fingerprint(&ds, def, Components::ALL, cfg, &cfg.fault, 1000)
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let cfg = WebIQConfig::default();
        let a = fingerprint_of("book", &cfg);
        assert_eq!(a, fingerprint_of("book", &cfg), "not reproducible");
        assert_ne!(a, fingerprint_of("airfare", &cfg), "domain ignored");
        let other = WebIQConfig {
            k: 12,
            ..WebIQConfig::default()
        };
        assert_ne!(a, fingerprint_of("book", &other), "config knob ignored");
    }

    #[test]
    fn fingerprint_ignores_thread_count() {
        let def = kb::domain("book").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let one = WebIQConfig {
            threads: Some(1),
            ..WebIQConfig::default()
        };
        let eight = WebIQConfig {
            threads: Some(8),
            ..WebIQConfig::default()
        };
        assert_eq!(
            run_fingerprint(&ds, def, Components::ALL, &one, &one.fault, 10),
            run_fingerprint(&ds, def, Components::ALL, &eight, &eight.fault, 10),
        );
    }

    #[test]
    fn counter_pairs_roundtrip_through_names() {
        let mut m = MetricSet::new();
        m.add(Counter::SurfaceQueries, 42);
        m.add(Counter::BayesAccepted, 7);
        let pairs = counter_pairs(&m);
        let back = metrics_from_pairs(&pairs);
        assert_eq!(back.get(Counter::SurfaceQueries), 42);
        assert_eq!(back.get(Counter::BayesAccepted), 7);
        assert_eq!(counter_pairs(&back), pairs);
        // unknown names from a future build are skipped, not fatal
        let with_unknown = vec![("no_such_counter".to_string(), 5)];
        assert!(metrics_from_pairs(&with_unknown).is_zero());
    }
}
