//! The instance-verification phase (§2.2): statistical outlier removal
//! followed by Web validation with PMI-scored validation queries.

use webiq_prof::Stage;
use webiq_stats::{outlier, pmi};
use webiq_trace::Counter;
use webiq_web::QueryEngine;

use crate::config::WebIQConfig;

/// A candidate that survived verification, with its confidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedInstance {
    /// The instance text.
    pub text: String,
    /// Average validation score across the validation phrases.
    pub score: f64,
}

/// Outcome of the verification phase.
#[derive(Debug, Clone, Default)]
pub struct VerificationOutcome {
    /// Survivors, best first (at most `k`).
    pub instances: Vec<ValidatedInstance>,
    /// Candidates removed by the outlier phase.
    pub outliers_removed: usize,
    /// Candidates removed by Web validation.
    pub validation_removed: usize,
}

/// Compute the validation score of `candidate` against one validation
/// phrase (§2.2): `PMI(V, x) = NumHits(V + x) / (NumHits(V) · NumHits(x))`,
/// or the raw joint hit count when `use_pmi` is off (the ablation that
/// exhibits popularity bias).
pub fn validation_score<E: QueryEngine>(
    engine: &E,
    phrase: &str,
    candidate: &str,
    use_pmi: bool,
) -> f64 {
    let joint = engine.num_hits(&format!("\"{phrase} {candidate}\""));
    if !use_pmi {
        return joint as f64;
    }
    let v = engine.num_hits(&format!("\"{phrase}\""));
    let x = engine.num_hits(&format!("\"{candidate}\""));
    pmi::pmi(joint, v, x)
}

/// The full validation vector of a candidate across all phrases.
pub fn validation_vector<E: QueryEngine>(
    engine: &E,
    phrases: &[String],
    candidate: &str,
    use_pmi: bool,
) -> Vec<f64> {
    phrases
        .iter()
        .map(|p| validation_score(engine, p, candidate, use_pmi))
        .collect()
}

/// Average validation score (the paper's confidence score).
pub fn confidence<E: QueryEngine>(
    engine: &E,
    phrases: &[String],
    candidate: &str,
    use_pmi: bool,
) -> f64 {
    let scores = validation_vector(engine, phrases, candidate, use_pmi);
    pmi::average(&scores)
}

/// [`confidence`] plus the per-phrase evidence behind it: the joint and
/// marginal hit counts and the PMI score of every validation phrase, as
/// decision terms (`joint_i`, `vhits_i`, `xhits_i`, `pmi_i`). Issues
/// exactly the same engine queries in exactly the same order as
/// [`confidence`], so swapping one for the other cannot perturb the
/// deterministic counter stream.
pub fn confidence_with_evidence<E: QueryEngine>(
    engine: &E,
    phrases: &[String],
    candidate: &str,
    use_pmi: bool,
) -> (f64, Vec<(String, f64)>) {
    let mut terms = Vec::new();
    let mut scores = Vec::with_capacity(phrases.len());
    for (i, phrase) in phrases.iter().enumerate() {
        let joint = engine.num_hits(&format!("\"{phrase} {candidate}\""));
        terms.push((format!("joint_{i}"), joint as f64));
        let s = if use_pmi {
            let v = engine.num_hits(&format!("\"{phrase}\""));
            let x = engine.num_hits(&format!("\"{candidate}\""));
            let p = pmi::pmi(joint, v, x);
            terms.push((format!("vhits_{i}"), v as f64));
            terms.push((format!("xhits_{i}"), x as f64));
            terms.push((format!("pmi_{i}"), p));
            p
        } else {
            joint as f64
        };
        scores.push(s);
    }
    (pmi::average(&scores), terms)
}

/// Run the verification phase over extraction candidates: outlier
/// detection (when enabled), then Web validation, returning the top `k`
/// by confidence. Traced as a `verify` span; removals and survivors are
/// tallied under [`Counter::OutliersRemoved`],
/// [`Counter::ValidationRejected`], and [`Counter::ValidationAccepted`].
///
/// When the engine reports that hit-count evidence is no longer
/// trustworthy ([`QueryEngine::validation_available`] — e.g. the daily
/// quota is exhausted), Web validation degrades to **statistics-only**
/// filtering: the outlier phase still runs, but survivors are kept
/// unscored rather than burning queries that would be denied anyway.
/// The validation counters are left untouched in that mode — the stage
/// genuinely did not run.
pub fn verify_candidates<E: QueryEngine>(
    engine: &E,
    phrases: &[String],
    candidates: &[String],
    cfg: &WebIQConfig,
) -> VerificationOutcome {
    webiq_prof::time(Stage::Verify, || {
        verify_candidates_inner(engine, phrases, candidates, cfg)
    })
}

/// One candidate's validation evidence: text, score, and the named
/// terms behind the score, ready for an `instance_validate` record.
type CandidateEvidence = (String, f64, Vec<(String, f64)>);

/// [`verify_candidates`] minus the profiling wrapper, so the wall-clock
/// stage timer brackets exactly one verification pass.
fn verify_candidates_inner<E: QueryEngine>(
    engine: &E,
    phrases: &[String],
    candidates: &[String],
    cfg: &WebIQConfig,
) -> VerificationOutcome {
    let _span = webiq_trace::span("verify");
    let (kept, outliers_removed) = if cfg.outlier_phase {
        let r = outlier::remove_outliers_with(candidates, cfg.discordancy);
        (r.kept, r.removed.len())
    } else {
        (
            candidates
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            0,
        )
    };

    if !engine.validation_available() {
        let mut instances: Vec<ValidatedInstance> = kept
            .into_iter()
            .map(|text| ValidatedInstance { text, score: 0.0 })
            .collect();
        instances.sort_by(|a, b| a.text.cmp(&b.text));
        instances.truncate(cfg.k);
        webiq_trace::add(Counter::OutliersRemoved, outliers_removed as u64);
        return VerificationOutcome {
            instances,
            outliers_removed,
            validation_removed: 0,
        };
    }

    let evidence: Vec<CandidateEvidence> = kept
        .into_iter()
        .map(|text| {
            let (score, mut terms) = confidence_with_evidence(engine, phrases, &text, cfg.use_pmi);
            terms.push(("score".to_string(), score));
            terms.push(("threshold".to_string(), cfg.min_validation_score));
            (text, score, terms)
        })
        .collect();
    let mut scored: Vec<ValidatedInstance> = evidence
        .iter()
        .map(|(text, score, _)| ValidatedInstance {
            text: text.clone(),
            score: *score,
        })
        .collect();
    let before = scored.len();
    scored.retain(|v| v.score > cfg.min_validation_score);
    let validation_removed = before - scored.len();

    scored.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.text.cmp(&b.text))
    });
    scored.truncate(cfg.k);
    // one provenance record per candidate, in extraction order; accept
    // means "survived the threshold AND the top-k cut"
    let accepted: std::collections::BTreeSet<&str> =
        scored.iter().map(|v| v.text.as_str()).collect();
    for (text, _, terms) in &evidence {
        let refs: Vec<(&str, f64)> = terms.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        webiq_why::record::instance_validate(text, accepted.contains(text.as_str()), &refs);
    }
    webiq_trace::add(Counter::OutliersRemoved, outliers_removed as u64);
    webiq_trace::add(Counter::ValidationRejected, validation_removed as u64);
    webiq_trace::add(Counter::ValidationAccepted, scored.len() as u64);
    VerificationOutcome {
        instances: scored,
        outliers_removed,
        validation_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_web::{Corpus, SearchEngine};

    fn engine() -> SearchEngine {
        SearchEngine::new(Corpus::from_texts([
            // strong evidence for Honda/Toyota as makes
            "makes such as Honda and Toyota are common",
            "Make: Honda. Model: Accord.",
            "Make: Toyota. Model: Camry.",
            "this car's make is Honda",
            // Economy appears a lot but never near "make"
            "economy class is cheap",
            "economy news economy report economy",
            "the economy grows",
        ]))
        .expect("engine")
    }

    fn phrases() -> Vec<String> {
        vec!["make".into(), "makes such as".into()]
    }

    #[test]
    fn instances_outscore_non_instances() {
        let e = engine();
        let honda = confidence(&e, &phrases(), "Honda", true);
        let economy = confidence(&e, &phrases(), "Economy", true);
        assert!(honda > economy, "honda={honda} economy={economy}");
        assert_eq!(economy, 0.0);
    }

    #[test]
    fn pmi_corrects_popularity_bias() {
        // raw joint hits would rank a popular co-occurring term higher than
        // a rare true instance; PMI normalises by the marginals
        let e = SearchEngine::new(Corpus::from_texts([
            "makes such as Honda",
            "makes such as Star every day",
            "Star here",
            "Star there",
            "Star again",
            "Star a lot",
            "Star star",
            "Star news",
            "Star reviews",
            "Star ratings",
        ]))
        .expect("engine");
        let p = vec!["makes such as".to_string()];
        let honda_pmi = confidence(&e, &p, "Honda", true);
        let star_pmi = confidence(&e, &p, "Star", true);
        assert!(
            honda_pmi > star_pmi,
            "pmi: honda={honda_pmi} star={star_pmi}"
        );
        let honda_raw = confidence(&e, &p, "Honda", false);
        let star_raw = confidence(&e, &p, "Star", false);
        assert!(
            honda_raw <= star_raw,
            "raw: honda={honda_raw} star={star_raw}"
        );
    }

    #[test]
    fn verify_keeps_true_instances_and_drops_noise() {
        let e = engine();
        let candidates: Vec<String> = ["Honda", "Toyota", "Economy"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let out = verify_candidates(&e, &phrases(), &candidates, &WebIQConfig::default());
        let texts: Vec<&str> = out.instances.iter().map(|i| i.text.as_str()).collect();
        assert!(texts.contains(&"Honda"));
        assert!(texts.contains(&"Toyota"));
        assert!(!texts.contains(&"Economy"));
        assert_eq!(out.validation_removed, 1);
    }

    #[test]
    fn top_k_is_respected() {
        let e = engine();
        let candidates: Vec<String> = vec!["Honda".into(), "Toyota".into()];
        let cfg = WebIQConfig {
            k: 1,
            ..WebIQConfig::default()
        };
        let out = verify_candidates(&e, &phrases(), &candidates, &cfg);
        assert_eq!(out.instances.len(), 1);
    }

    #[test]
    fn outlier_phase_removes_overlong_junk() {
        let e = engine();
        let mut candidates: Vec<String> = [
            "Honda", "Toyota", "Nissan", "Mazda", "Subaru", "Lexus", "Acura", "Jeep", "Dodge",
            "Buick", "Chevy", "Saturn",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        candidates.push("a very long extraction artifact that is clearly not a car make".into());
        let out = verify_candidates(&e, &phrases(), &candidates, &WebIQConfig::default());
        assert_eq!(out.outliers_removed, 1);

        // ablation: with the outlier phase off, the junk reaches (and is
        // rejected by) Web validation instead — costing validation queries
        let cfg = WebIQConfig {
            outlier_phase: false,
            ..WebIQConfig::default()
        };
        let out2 = verify_candidates(&e, &phrases(), &candidates, &cfg);
        assert_eq!(out2.outliers_removed, 0);
        assert!(out2.validation_removed >= 1);
    }

    #[test]
    fn grubbs_variant_is_usable() {
        use webiq_stats::DiscordancyTest;
        let e = engine();
        // n = 6: the 3σ rule cannot fire, Grubbs can
        let candidates: Vec<String> = ["Honda", "Toyota", "Nissan", "Mazda", "Subaru"]
            .iter()
            .map(|s| (*s).to_string())
            .chain(["an extremely long extraction artifact that is not a make".to_string()])
            .collect();
        let sigma = verify_candidates(&e, &phrases(), &candidates, &WebIQConfig::default());
        let cfg = WebIQConfig {
            discordancy: DiscordancyTest::Grubbs,
            ..WebIQConfig::default()
        };
        let grubbs = verify_candidates(&e, &phrases(), &candidates, &cfg);
        assert_eq!(sigma.outliers_removed, 0);
        assert_eq!(grubbs.outliers_removed, 1);
    }

    #[test]
    fn empty_candidates() {
        let e = engine();
        let out = verify_candidates(&e, &phrases(), &[], &WebIQConfig::default());
        assert!(out.instances.is_empty());
    }

    #[test]
    fn ordering_is_deterministic() {
        let e = engine();
        let candidates: Vec<String> = vec!["Toyota".into(), "Honda".into()];
        let a = verify_candidates(&e, &phrases(), &candidates, &WebIQConfig::default());
        let b = verify_candidates(&e, &phrases(), &candidates, &WebIQConfig::default());
        assert_eq!(a.instances, b.instances);
    }
}
