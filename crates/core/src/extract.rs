//! The instance-extraction phase (§2.1): label syntax analysis, extraction
//! query formulation, and candidate extraction from result snippets.

use std::collections::BTreeMap;

use webiq_nlp::chunk::{self, LabelForm, NounPhrase};
use webiq_nlp::pos::{self, Tagged};
use webiq_trace::Counter;
use webiq_web::QueryEngine;

use crate::config::WebIQConfig;
use crate::patterns::{extraction_patterns, CompletionSide, MaterializedPattern, PatternKind};

/// Domain information used to scope extraction queries (§2.1: the object
/// name, the domain name, and labels/instances of sibling attributes).
#[derive(Debug, Clone, Default)]
pub struct DomainInfo {
    /// The real-world object name (`"book"`).
    pub object: String,
    /// Domain terms, most specific first (`["book", "bookstore"]`).
    pub domain_terms: Vec<String>,
    /// Content keywords from the labels of the *other* attributes on the
    /// same interface (`["title", "isbn"]` for a bookstore's `author`).
    /// §2.1 appends these to extraction queries to narrow their scope.
    pub sibling_terms: Vec<String>,
}

/// One candidate with its occurrence count across snippets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Display form (original casing from the first sighting).
    pub text: String,
    /// How many snippets yielded it (redundancy-based confidence).
    pub count: usize,
}

/// Result of the extraction phase.
#[derive(Debug, Clone, Default)]
pub struct ExtractionOutcome {
    /// Candidates in first-seen order.
    pub candidates: Vec<Candidate>,
    /// Number of extraction queries posed.
    pub queries: usize,
}

/// Analyze an attribute label and return the noun phrases usable for query
/// formulation (§2.1). Empty when the label has no noun phrase — the
/// extraction phase then terminates with no instances.
pub fn label_noun_phrases(label: &str) -> Vec<NounPhrase> {
    let form = chunk::classify_label(label);
    form.noun_phrases().into_iter().cloned().collect()
}

/// The primary noun phrase of a label, if any.
pub fn primary_noun_phrase(label: &str) -> Option<NounPhrase> {
    label_noun_phrases(label).into_iter().next()
}

/// Is the label form "benign" for Surface extraction (§4 intro: noun or
/// noun phrase)? Prepositional and verb-phrase labels formulate queries
/// from their inner NP but are considered less reliable.
pub fn label_is_benign(label: &str) -> bool {
    matches!(
        chunk::classify_label(label),
        LabelForm::NounPhrase(_) | LabelForm::Conjunction(_)
    )
}

/// Build the search-engine query string for a pattern: the quoted cue
/// phrase plus `+keyword` scoping from the domain info.
pub fn build_query(pattern: &MaterializedPattern, info: &DomainInfo, cfg: &WebIQConfig) -> String {
    let mut q = format!("\"{}\"", pattern.cue);
    for term in info.domain_terms.iter().take(cfg.scope_keywords) {
        // multi-word domain terms ("real estate") are quoted
        if term.contains(' ') {
            q.push_str(&format!(" \"{term}\""));
        } else {
            q.push_str(&format!(" +{term}"));
        }
    }
    // §2.1: "It also adds to such queries keywords formed from labels of
    // other attributes" — the paper's `"authors such as" +book +title
    // +isbn`. AND-semantics make each keyword a strict filter, so the
    // count is configurable (0 disables).
    for term in info.sibling_terms.iter().take(cfg.sibling_keywords) {
        q.push_str(&format!(" +{term}"));
    }
    q
}

/// Join the original (cased) token texts of a span.
fn span_text(tagged: &[Tagged], span: (usize, usize)) -> String {
    tagged[span.0..span.1]
        .iter()
        .map(|t| t.token.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Extract completions from one snippet for one pattern: find the cue
/// phrase, then parse the NP list on the completion side.
pub fn completions(snippet: &str, pattern: &MaterializedPattern) -> Vec<String> {
    let lower = snippet.to_lowercase();
    let Some(pos_byte) = lower.find(&pattern.cue) else {
        return Vec::new();
    };
    match pattern.side {
        CompletionSide::After => {
            let after = &snippet[pos_byte + pattern.cue.len()..];
            let tagged = pos::tag(after);
            let spans = chunk::parse_np_list_spans(&tagged);
            let texts: Vec<String> = spans.iter().map(|s| span_text(&tagged, *s)).collect();
            match pattern.kind {
                PatternKind::Set => texts,
                PatternKind::Singleton => texts.into_iter().take(1).collect(),
            }
        }
        CompletionSide::Before => {
            let before = &snippet[..pos_byte];
            let tagged = pos::tag(before);
            let spans = trailing_np_list(&tagged);
            let texts: Vec<String> = spans.iter().map(|s| span_text(&tagged, *s)).collect();
            match pattern.kind {
                PatternKind::Set => texts,
                PatternKind::Singleton => texts.into_iter().rev().take(1).collect(),
            }
        }
    }
}

/// The NP list forming the *suffix* of a tagged sequence (completions that
/// precede a cue, as in `NP₁, …, NPₙ, and other Ls`). A single trailing
/// separator (the comma before `and other`) is tolerated.
fn trailing_np_list(tagged: &[Tagged]) -> Vec<(usize, usize)> {
    let mut end = tagged.len();
    // tolerate one trailing "," separator
    while let Some(prev) = end.checked_sub(1).and_then(|i| tagged.get(i)) {
        if prev.tag == webiq_nlp::Tag::SYM && prev.token.text == "," {
            end -= 1;
        } else {
            break;
        }
    }
    let slice = &tagged[..end];
    // longest suffix that parses as an NP list consuming the whole suffix
    for start in 0..slice.len() {
        let spans = chunk::parse_np_list_spans(&slice[start..]);
        if let Some(last) = spans.last() {
            if start + last.1 == slice.len() {
                return spans.iter().map(|(a, b)| (start + a, start + b)).collect();
            }
        }
    }
    Vec::new()
}

/// Should a raw completion string be kept as a candidate? Drops empty
/// strings, bare stopwords, and echoes of the label itself.
fn plausible(text: &str, label_lower: &str) -> bool {
    let t = text.trim();
    if t.is_empty() || t.len() > 60 {
        return false;
    }
    let lower = t.to_lowercase();
    if lower == label_lower || label_lower.contains(&lower) && lower.len() > 3 {
        return false;
    }
    if t.split_whitespace().all(webiq_nlp::stopwords::is_stopword) {
        return false;
    }
    true
}

/// Run the full extraction phase for one attribute label. Traced as an
/// `extract` span; poses one [`Counter::ExtractQueries`] per query and
/// tallies raw yields under [`Counter::CandidatesExtracted`].
pub fn extract_candidates<E: QueryEngine>(
    engine: &E,
    label: &str,
    info: &DomainInfo,
    cfg: &WebIQConfig,
) -> ExtractionOutcome {
    let _span = webiq_trace::span("extract");
    let nps = label_noun_phrases(label);
    if nps.is_empty() {
        return ExtractionOutcome::default();
    }
    let label_lower = label.trim().trim_end_matches(':').to_lowercase();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new(); // lower → index
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut queries = 0;

    for np in &nps {
        for pattern in extraction_patterns(np, &info.object) {
            let query = build_query(&pattern, info, cfg);
            queries += 1;
            webiq_trace::incr(Counter::ExtractQueries);
            for snippet in engine.search(&query, cfg.snippets_per_query) {
                for text in completions(&snippet.text, &pattern) {
                    if !plausible(&text, &label_lower) {
                        continue;
                    }
                    let key = text.to_lowercase();
                    match seen.get(&key) {
                        Some(&idx) => candidates[idx].count += 1,
                        None => {
                            seen.insert(key, candidates.len());
                            candidates.push(Candidate { text, count: 1 });
                        }
                    }
                }
            }
        }
    }
    webiq_trace::add(Counter::CandidatesExtracted, candidates.len() as u64);
    ExtractionOutcome {
        candidates,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_web::{Corpus, SearchEngine};

    fn cfg() -> WebIQConfig {
        WebIQConfig::default()
    }

    fn info() -> DomainInfo {
        DomainInfo {
            object: "flight".into(),
            domain_terms: vec!["travel".into()],
            sibling_terms: Vec::new(),
        }
    }

    #[test]
    fn paper_snippet_example() {
        // Fig. 2: the snippet "... departure cities such as Boston,
        // Chicago, and LAX" yields exactly those three instances.
        let np = primary_noun_phrase("Departure city").expect("np");
        let pattern = &extraction_patterns(&np, "flight")[0];
        let got = completions(
            "Check fares from departure cities such as Boston, Chicago, and LAX. More info.",
            pattern,
        );
        assert_eq!(got, vec!["Boston", "Chicago", "LAX"]);
    }

    #[test]
    fn multiword_completions_keep_casing() {
        let np = primary_noun_phrase("Airline").expect("np");
        let pattern = &extraction_patterns(&np, "flight")[0];
        let got = completions(
            "airlines such as Air Canada and Aer Lingus fly here",
            pattern,
        );
        assert_eq!(got, vec!["Air Canada", "Aer Lingus"]);
    }

    #[test]
    fn s4_extracts_preceding_list() {
        let np = primary_noun_phrase("Airline").expect("np");
        let s4 = extraction_patterns(&np, "flight")
            .into_iter()
            .find(|p| p.id == "s4")
            .expect("s4");
        let got = completions("Delta, United, and other airlines serve this hub", &s4);
        assert!(got.contains(&"Delta".to_string()), "{got:?}");
        assert!(got.contains(&"United".to_string()), "{got:?}");
    }

    #[test]
    fn g4_extracts_single_preceding_np() {
        let np = primary_noun_phrase("Author").expect("np");
        let g4 = extraction_patterns(&np, "book")
            .into_iter()
            .find(|p| p.id == "g4")
            .expect("g4");
        let got = completions("Stephen King is the author of many novels", &g4);
        assert_eq!(got, vec!["Stephen King"]);
    }

    #[test]
    fn g1_extracts_following_np() {
        let np = primary_noun_phrase("Author").expect("np");
        let g1 = extraction_patterns(&np, "book")
            .into_iter()
            .find(|p| p.id == "g1")
            .expect("g1");
        let got = completions("We know the author of the book is Mark Twain.", &g1);
        assert_eq!(got, vec!["Mark Twain"]);
    }

    #[test]
    fn no_cue_no_completions() {
        let np = primary_noun_phrase("Airline").expect("np");
        let pattern = &extraction_patterns(&np, "flight")[0];
        assert!(completions("nothing relevant here", pattern).is_empty());
    }

    #[test]
    fn query_formatting_matches_google_syntax() {
        let np = primary_noun_phrase("Author").expect("np");
        let pattern = &extraction_patterns(&np, "book")[0];
        let info = DomainInfo {
            object: "book".into(),
            domain_terms: vec!["book".into()],
            sibling_terms: Vec::new(),
        };
        let q = build_query(pattern, &info, &cfg());
        assert_eq!(q, "\"authors such as\" +book");
    }

    #[test]
    fn sibling_keywords_narrow_queries() {
        let np = primary_noun_phrase("Author").expect("np");
        let pattern = &extraction_patterns(&np, "book")[0];
        let info = DomainInfo {
            object: "book".into(),
            domain_terms: vec!["book".into()],
            sibling_terms: vec!["title".into(), "isbn".into(), "publisher".into()],
        };
        let cfg = WebIQConfig {
            sibling_keywords: 2,
            ..WebIQConfig::default()
        };
        let q = build_query(pattern, &info, &cfg);
        // the paper's example query, exactly
        assert_eq!(q, "\"authors such as\" +book +title +isbn");
        // disabled by default
        assert_eq!(
            build_query(pattern, &info, &WebIQConfig::default()),
            "\"authors such as\" +book"
        );
    }

    #[test]
    fn multiword_domain_terms_are_quoted() {
        let np = primary_noun_phrase("City").expect("np");
        let pattern = &extraction_patterns(&np, "home")[0];
        let info = DomainInfo {
            object: "home".into(),
            domain_terms: vec!["real estate".into()],
            sibling_terms: Vec::new(),
        };
        let q = build_query(pattern, &info, &cfg());
        assert_eq!(q, "\"cities such as\" \"real estate\"");
    }

    #[test]
    fn prepositional_label_uses_inner_np() {
        let nps = label_noun_phrases("From city");
        assert_eq!(nps.len(), 1);
        assert_eq!(nps[0].text(), "city");
        assert!(label_noun_phrases("From").is_empty());
        assert!(!label_is_benign("From city"));
        assert!(label_is_benign("Departure city"));
    }

    #[test]
    fn end_to_end_extraction_against_engine() {
        let engine = SearchEngine::new(Corpus::from_texts([
            "Popular departure cities such as Boston, Chicago, and Denver are listed. This page is about travel.",
            "We feature such departure cities as Seattle and Atlanta. This page is about travel.",
            "This page is about gardening.",
        ])).expect("engine");
        let outcome = extract_candidates(&engine, "Departure city", &info(), &cfg());
        let texts: Vec<&str> = outcome.candidates.iter().map(|c| c.text.as_str()).collect();
        assert!(texts.contains(&"Boston"), "{texts:?}");
        assert!(texts.contains(&"Seattle"), "{texts:?}");
        assert!(outcome.queries >= 8);
    }

    #[test]
    fn label_without_np_yields_nothing() {
        let engine = SearchEngine::new(Corpus::from_texts(["anything"])).expect("engine");
        let outcome = extract_candidates(&engine, "From", &info(), &cfg());
        assert!(outcome.candidates.is_empty());
        assert_eq!(outcome.queries, 0);
    }

    #[test]
    fn duplicate_candidates_counted() {
        let engine = SearchEngine::new(Corpus::from_texts([
            "cities such as Boston and Chicago. This page is about travel.",
            "more cities such as Boston and Denver here. This page is about travel.",
        ]))
        .expect("engine");
        let outcome = extract_candidates(&engine, "City", &info(), &cfg());
        let boston = outcome
            .candidates
            .iter()
            .find(|c| c.text == "Boston")
            .expect("boston extracted");
        assert_eq!(boston.count, 2);
    }

    #[test]
    fn conjunction_label_covers_both_nps() {
        let engine = SearchEngine::new(Corpus::from_texts([
            "first names such as Alice and Bob. This page is about travel.",
            "last names such as Smith and Jones. This page is about travel.",
        ]))
        .expect("engine");
        let outcome = extract_candidates(&engine, "First name or last name", &info(), &cfg());
        let texts: Vec<&str> = outcome.candidates.iter().map(|c| c.text.as_str()).collect();
        assert!(texts.contains(&"Alice"), "{texts:?}");
        assert!(texts.contains(&"Smith"), "{texts:?}");
    }

    #[test]
    fn label_echo_filtered() {
        assert!(!plausible("city", "city"));
        assert!(plausible("Boston", "city"));
        assert!(!plausible("", "city"));
        assert!(!plausible("the", "city"));
    }
}
