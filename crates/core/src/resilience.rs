//! Per-work-item resilience: deterministic fault injection, retry with
//! virtual-time backoff, circuit breaking, and quota-aware degradation
//! wrapped around the acquisition stack's two I/O boundaries.
//!
//! Every acquisition work item (one attribute) gets its own
//! [`Resilience`] bundle — clock, retry budget, and breakers are `Cell`
//! state evolved single-threadedly, so outcomes are a pure function of
//! the calls made on behalf of that attribute and stay byte-identical at
//! any worker count. The one shared piece is the run-wide
//! [`QuotaTracker`]: with the default unlimited quota it never denies;
//! with a finite quota, exhaustion order depends on scheduling, so quota
//! experiments run single-threaded (see `crates/fault/src/quota.rs`).
//!
//! The wrappers engage only when [`FaultConfig::enabled`] — an
//! unconfigured run never constructs them and is byte-identical to the
//! pre-resilience pipeline.

use std::cell::Cell;
use std::collections::BTreeMap;

use webiq_deep::{DeepError, DeepSource};
use webiq_fault::{
    query_key, CircuitBreaker, FaultConfig, FaultPlan, QuotaTracker, RetryBudget, RetryPolicy,
    VirtualClock,
};
use webiq_trace::Counter;
use webiq_web::{QueryEngine, SearchEngine, Snippet};

use crate::attr_deep::ProbeTarget;

/// The per-item resilience bundle: one fault schedule, one virtual
/// clock, one retry budget, and one circuit breaker per endpoint lane.
#[derive(Debug)]
pub struct Resilience<'q> {
    plan: FaultPlan,
    policy: RetryPolicy,
    clock: VirtualClock,
    budget: RetryBudget,
    quota: &'q QuotaTracker,
    degraded: Cell<bool>,
    search_breaker: CircuitBreaker,
    hits_breaker: CircuitBreaker,
    probe_breaker: CircuitBreaker,
}

impl<'q> Resilience<'q> {
    /// The bundle a [`FaultConfig`] describes, metering engine calls
    /// against the shared `quota`.
    pub fn new(cfg: &FaultConfig, quota: &'q QuotaTracker) -> Self {
        Resilience {
            plan: FaultPlan::from_config(cfg),
            policy: RetryPolicy::from_config(cfg),
            clock: VirtualClock::new(),
            budget: RetryBudget::new(cfg.retry_budget),
            quota,
            degraded: Cell::new(false),
            search_breaker: CircuitBreaker::from_config(cfg),
            hits_breaker: CircuitBreaker::from_config(cfg),
            probe_breaker: CircuitBreaker::from_config(cfg),
        }
    }

    /// Did any call on this item fall back without completing — breaker
    /// fast-fail, retry exhaustion, or quota denial?
    pub fn degraded(&self) -> bool {
        self.degraded.get()
    }

    /// Virtual milliseconds spent backing off so far.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Retries this item may still spend.
    pub fn retries_remaining(&self) -> u64 {
        self.budget.remaining()
    }

    fn mark_degraded(&self) {
        self.degraded.set(true);
    }

    /// Decide one injected-fault occurrence: record it against the
    /// breaker, then either schedule a retry (true) or give up (false).
    /// Shared by both boundaries so the tallies and backoff schedule
    /// mean the same thing everywhere.
    fn after_failure(&self, breaker: &CircuitBreaker, key: u64, attempt: u32) -> bool {
        breaker.record_failure(&self.clock);
        if self.policy.allows(attempt + 1) && self.budget.try_take() {
            webiq_trace::incr(Counter::FaultRetryAttempt);
            self.clock
                .advance_ms(self.policy.backoff_ms(key, attempt + 1));
            return true;
        }
        webiq_trace::incr(Counter::FaultRetryExhausted);
        self.mark_degraded();
        false
    }

    /// The engine-boundary call loop: breaker gate, planned injection,
    /// quota charge, then the real call. Returns `fallback()` when the
    /// call cannot complete.
    fn guarded<T>(
        &self,
        breaker: &CircuitBreaker,
        endpoint: &str,
        key: u64,
        exec: impl Fn() -> T,
        fallback: impl FnOnce() -> T,
    ) -> T {
        let mut attempt = 0u32;
        loop {
            if !breaker.allow(&self.clock) {
                webiq_trace::incr(Counter::FaultBreakerOpen);
                self.mark_degraded();
                return fallback();
            }
            if self.plan.decide(endpoint, key, attempt).is_some() {
                webiq_trace::incr(Counter::FaultInjected);
                if self.after_failure(breaker, key, attempt) {
                    attempt += 1;
                    continue;
                }
                return fallback();
            }
            if !self.quota.try_consume(1) {
                webiq_trace::incr(Counter::FaultQuotaDenied);
                self.mark_degraded();
                return fallback();
            }
            breaker.record_success();
            return exec();
        }
    }
}

/// A [`QueryEngine`] that runs every call through the item's
/// [`Resilience`] bundle: injected faults are retried with backoff on
/// the virtual clock, the per-endpoint breaker fast-fails a failing
/// lane, and each completed call is charged against the daily quota.
/// Fallbacks are empty results — the degradation ladder, not an abort.
pub struct ResilientEngine<'a> {
    engine: &'a SearchEngine,
    res: &'a Resilience<'a>,
}

impl<'a> ResilientEngine<'a> {
    /// Wrap `engine` with the item's resilience bundle.
    pub fn new(engine: &'a SearchEngine, res: &'a Resilience<'a>) -> Self {
        ResilientEngine { engine, res }
    }
}

impl QueryEngine for ResilientEngine<'_> {
    fn search(&self, query: &str, k: usize) -> Vec<Snippet> {
        self.res.guarded(
            &self.res.search_breaker,
            "engine/search",
            query_key(query),
            || self.engine.search(query, k),
            Vec::new,
        )
    }

    fn num_hits(&self, query: &str) -> u64 {
        self.res.guarded(
            &self.res.hits_breaker,
            "engine/hits",
            query_key(query),
            || self.engine.num_hits(query),
            || 0,
        )
    }

    /// Hit-count evidence stops being trustworthy once the daily quota
    /// is spent: verification then degrades to statistics-only checks.
    fn validation_available(&self) -> bool {
        !self.res.quota.exhausted()
    }
}

/// A [`ProbeTarget`] that retries server errors from a [`DeepSource`]
/// through the item's [`Resilience`] bundle, passing increasing attempt
/// numbers so transient injected faults can clear. Probes do not charge
/// the (search-engine) daily quota.
#[derive(Debug)]
pub struct ResilientSource<'a> {
    source: &'a DeepSource,
    res: &'a Resilience<'a>,
}

impl<'a> ResilientSource<'a> {
    /// Wrap `source` with the item's resilience bundle.
    pub fn new(source: &'a DeepSource, res: &'a Resilience<'a>) -> Self {
        ResilientSource { source, res }
    }
}

/// The backoff-jitter key of a submission: the same FNV-1a fold over
/// `name\0value\0…` the source itself hashes, so schedules are a pure
/// function of the request.
fn values_key(values: &BTreeMap<String, String>) -> u64 {
    let mut buf = String::new();
    for (k, v) in values {
        buf.push_str(k);
        buf.push('\0');
        buf.push_str(v);
        buf.push('\0');
    }
    query_key(&buf)
}

impl ProbeTarget for ResilientSource<'_> {
    fn probe(&self, values: &BTreeMap<String, String>) -> bool {
        let breaker = &self.res.probe_breaker;
        let key = values_key(values);
        let mut attempt = 0u32;
        loop {
            if !breaker.allow(&self.res.clock) {
                webiq_trace::incr(Counter::FaultBreakerOpen);
                self.res.mark_degraded();
                return false;
            }
            match self.source.try_submit_attempt(values, attempt) {
                Ok(matches) => {
                    breaker.record_success();
                    return !matches.is_empty();
                }
                Err(DeepError::ServerError) => {
                    if self.res.after_failure(breaker, key, attempt) {
                        attempt += 1;
                        continue;
                    }
                    return false;
                }
                // The endpoint answered; the request itself was invalid —
                // a retry cannot change a validation verdict.
                Err(_) => {
                    breaker.record_success();
                    return false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_deep::{ParamDomain, Record, RecordStore, SourceParam};
    use webiq_web::Corpus;

    fn engine() -> SearchEngine {
        SearchEngine::new(Corpus::from_texts([
            "makes such as Honda and Toyota",
            "Make: Honda.",
        ]))
        .expect("engine")
    }

    fn source(plan: FaultPlan) -> DeepSource {
        let store = RecordStore::new(vec![Record::new([("from", "Chicago")])]);
        DeepSource::new(
            "src",
            vec![SourceParam {
                name: "from".into(),
                domain: ParamDomain::Free,
                required: false,
            }],
            store,
        )
        .with_fault_plan(plan)
    }

    fn params(v: &str) -> BTreeMap<String, String> {
        [("from".to_string(), v.to_string())].into_iter().collect()
    }

    #[test]
    fn disabled_config_passes_calls_through() {
        let quota = QuotaTracker::new(0);
        let res = Resilience::new(&FaultConfig::default(), &quota);
        let e = engine();
        let wrapped = ResilientEngine::new(&e, &res);
        assert_eq!(wrapped.num_hits("\"Honda\""), e.num_hits("\"Honda\""));
        assert!(!res.degraded());
        assert_eq!(res.virtual_elapsed_ms(), 0);
    }

    #[test]
    fn transient_engine_faults_are_retried_to_success() {
        let quota = QuotaTracker::new(0);
        let cfg = FaultConfig {
            max_attempts: 8,
            retry_budget: 1_000,
            ..FaultConfig::chaos(3, 0.5)
        };
        let res = Resilience::new(&cfg, &quota);
        let e = engine();
        let wrapped = ResilientEngine::new(&e, &res);
        let before = webiq_trace::snapshot();
        for i in 0..50 {
            let _ = wrapped.num_hits(&format!("\"query {i}\""));
        }
        let d = webiq_trace::snapshot().diff(&before);
        assert!(d.get(Counter::FaultInjected) > 5, "{d:?}");
        assert!(d.get(Counter::FaultRetryAttempt) > 5, "{d:?}");
        // with 8 attempts at rate 0.5, essentially everything clears
        assert!(res.virtual_elapsed_ms() > 0, "backoff never ran");
    }

    #[test]
    fn retry_exhaustion_degrades_and_falls_back() {
        let quota = QuotaTracker::new(0);
        let cfg = FaultConfig {
            max_attempts: 2,
            ..FaultConfig::chaos(1, 1.0)
        };
        let res = Resilience::new(&cfg, &quota);
        let e = engine();
        let wrapped = ResilientEngine::new(&e, &res);
        assert_eq!(wrapped.num_hits("\"Honda\""), 0, "fallback is 0 hits");
        assert!(wrapped.search("\"Honda\"", 5).is_empty());
        assert!(res.degraded());
    }

    #[test]
    fn quota_denial_degrades_and_disables_validation() {
        let quota = QuotaTracker::new(1);
        let cfg = FaultConfig {
            daily_quota: 1,
            ..FaultConfig::default()
        };
        let res = Resilience::new(&cfg, &quota);
        let e = engine();
        let wrapped = ResilientEngine::new(&e, &res);
        assert!(wrapped.validation_available());
        let first = wrapped.num_hits("\"Honda\"");
        assert!(first > 0);
        let before = webiq_trace::snapshot();
        assert_eq!(wrapped.num_hits("\"Honda\""), 0);
        let d = webiq_trace::snapshot().diff(&before);
        assert_eq!(d.get(Counter::FaultQuotaDenied), 1);
        assert!(!wrapped.validation_available());
        assert!(res.degraded());
    }

    #[test]
    fn breaker_opens_under_sustained_faults_and_recovers() {
        let quota = QuotaTracker::new(0);
        let cfg = FaultConfig {
            max_attempts: 1, // no retries: each call is one failure
            breaker_threshold: 3,
            breaker_cooldown_ms: 1_000,
            ..FaultConfig::chaos(1, 1.0)
        };
        let res = Resilience::new(&cfg, &quota);
        let e = engine();
        let wrapped = ResilientEngine::new(&e, &res);
        let before = webiq_trace::snapshot();
        for _ in 0..6 {
            let _ = wrapped.num_hits("\"Honda\"");
        }
        let d = webiq_trace::snapshot().diff(&before);
        assert_eq!(d.get(Counter::FaultInjected), 3, "{d:?}");
        assert_eq!(d.get(Counter::FaultBreakerOpen), 3, "{d:?}");
        // cooldown elapses on the virtual clock → half-open trial flows
        res.clock.advance_ms(1_000);
        let mid = webiq_trace::snapshot();
        let _ = wrapped.num_hits("\"Honda\"");
        let d2 = webiq_trace::snapshot().diff(&mid);
        assert_eq!(d2.get(Counter::FaultInjected), 1, "trial call flowed");
    }

    #[test]
    fn transient_probe_faults_clear_on_retry() {
        let quota = QuotaTracker::new(0);
        let cfg = FaultConfig {
            max_attempts: 10,
            retry_budget: 1_000,
            ..FaultConfig::chaos(5, 0.6)
        };
        let res = Resilience::new(&cfg, &quota);
        let src = source(FaultPlan::from_config(&cfg));
        let wrapped = ResilientSource::new(&src, &res);
        // the matching probe must succeed despite a 60% transient rate
        assert!(wrapped.probe(&params("Chicago")));
        // ill-typed probe: endpoint answers, request finds nothing
        assert!(!wrapped.probe(&params("January")));
    }

    #[test]
    fn permanent_probe_faults_exhaust_retries() {
        let quota = QuotaTracker::new(0);
        let cfg = FaultConfig {
            permanent_rate: 1.0,
            max_attempts: 3,
            ..FaultConfig::default()
        };
        let res = Resilience::new(&cfg, &quota);
        let src = source(FaultPlan::from_config(&cfg));
        let wrapped = ResilientSource::new(&src, &res);
        let before = webiq_trace::snapshot();
        assert!(!wrapped.probe(&params("Chicago")));
        let d = webiq_trace::snapshot().diff(&before);
        assert_eq!(d.get(Counter::FaultRetryAttempt), 2);
        assert_eq!(d.get(Counter::FaultRetryExhausted), 1);
        assert!(res.degraded());
    }

    #[test]
    fn identical_bundles_produce_identical_outcomes() {
        let run = || {
            let quota = QuotaTracker::new(0);
            let cfg = FaultConfig::chaos(9, 0.4);
            let res = Resilience::new(&cfg, &quota);
            let e = engine();
            let wrapped = ResilientEngine::new(&e, &res);
            let hits: Vec<u64> = (0..30)
                .map(|i| wrapped.num_hits(&format!("\"q {i}\"")))
                .collect();
            (hits, res.virtual_elapsed_ms(), res.retries_remaining())
        };
        assert_eq!(run(), run());
    }
}
