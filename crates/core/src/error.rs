//! The unified error type of the WebIQ pipeline.
//!
//! Fallible entry points across the workspace funnel into [`WebIqError`]:
//! the Surface-Web simulator's [`WebError`] and the Deep-Web simulator's
//! [`DeepError`] convert via `From`, and the acquisition/pipeline layers
//! contribute their own variants. Library code returns
//! `Result<_, WebIqError>` instead of panicking; the `webiq-lint` pass
//! enforces the absence of `unwrap`/`expect`/`panic!` in non-test code.

use std::fmt;

use webiq_deep::DeepError;
use webiq_obs::ObsError;
use webiq_store::StoreError;
use webiq_web::WebError;

/// Any failure the WebIQ pipeline can report instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebIqError {
    /// The Surface-Web simulator failed to build.
    Web(WebError),
    /// A Deep-Web source rejected a submission.
    Deep(DeepError),
    /// The requested domain is not in the knowledge base.
    UnknownDomain {
        /// The domain name as requested.
        name: String,
    },
    /// An attribute reference pointed outside the dataset — an internal
    /// inconsistency between candidate lists and the interfaces they were
    /// drawn from.
    MissingAttribute {
        /// Interface index of the dangling reference.
        interface: usize,
        /// Attribute index within that interface.
        attribute: usize,
    },
    /// A parallel worker terminated abnormally.
    WorkerFailed {
        /// Which stage's pool lost the worker.
        stage: &'static str,
    },
    /// The observability layer failed (trace parsing, threshold config,
    /// or the metrics endpoint).
    Obs(ObsError),
    /// A persistent-store IO operation failed. The wrapped
    /// [`StoreError`] carries the file path, the operation, and the
    /// rendered `std::io::Error` (or injected-fault name), so a failed
    /// append or snapshot is attributable from the error alone.
    Io(StoreError),
}

impl fmt::Display for WebIqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebIqError::Web(e) => write!(f, "surface web: {e}"),
            WebIqError::Deep(e) => write!(f, "deep web: {e}"),
            WebIqError::UnknownDomain { name } => {
                write!(f, "unknown domain '{name}'")
            }
            WebIqError::MissingAttribute {
                interface,
                attribute,
            } => {
                write!(
                    f,
                    "attribute ({interface}, {attribute}) is not part of the dataset"
                )
            }
            WebIqError::WorkerFailed { stage } => {
                write!(f, "a parallel {stage} worker terminated abnormally")
            }
            WebIqError::Obs(e) => write!(f, "observability: {e}"),
            WebIqError::Io(e) => write!(f, "persistence: {e}"),
        }
    }
}

impl std::error::Error for WebIqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WebIqError::Web(e) => Some(e),
            WebIqError::Deep(e) => Some(e),
            WebIqError::Obs(e) => Some(e),
            WebIqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WebError> for WebIqError {
    fn from(e: WebError) -> Self {
        WebIqError::Web(e)
    }
}

impl From<DeepError> for WebIqError {
    fn from(e: DeepError) -> Self {
        WebIqError::Deep(e)
    }
}

impl From<ObsError> for WebIqError {
    fn from(e: ObsError) -> Self {
        WebIqError::Obs(e)
    }
}

impl From<StoreError> for WebIqError {
    fn from(e: StoreError) -> Self {
        WebIqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(
            WebIqError::UnknownDomain {
                name: "realty".into()
            }
            .to_string(),
            "unknown domain 'realty'"
        );
        assert_eq!(
            WebIqError::MissingAttribute {
                interface: 2,
                attribute: 5
            }
            .to_string(),
            "attribute (2, 5) is not part of the dataset"
        );
        assert_eq!(
            WebIqError::WorkerFailed {
                stage: "acquisition"
            }
            .to_string(),
            "a parallel acquisition worker terminated abnormally"
        );
    }

    #[test]
    fn wraps_component_errors() {
        let e: WebIqError = WebError::IndexWorkerFailed.into();
        assert_eq!(e, WebIqError::Web(WebError::IndexWorkerFailed));
        assert!(std::error::Error::source(&e).is_some());

        let e: WebIqError = DeepError::ServerError.into();
        assert_eq!(
            e.to_string(),
            "deep web: the source answered with a server error"
        );

        let e: WebIqError = ObsError::MalformedTrace {
            path: "run.jsonl".into(),
            line: 3,
        }
        .into();
        assert_eq!(
            e.to_string(),
            "observability: run.jsonl:3: not a valid trace event"
        );
        assert!(std::error::Error::source(&e).is_some());

        let e: WebIqError = StoreError {
            path: "/tmp/s/wal.log".into(),
            op: "append",
            detail: "injected fault: torn_write".into(),
        }
        .into();
        assert_eq!(
            e.to_string(),
            "persistence: store append on /tmp/s/wal.log: injected fault: torn_write"
        );
        assert!(std::error::Error::source(&e).is_some());
    }
}
