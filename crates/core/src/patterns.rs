//! Extraction and validation patterns (Figure 4 of the paper).
//!
//! Set patterns (completion = a list of NPs):
//!   s1: `Ls such as NP₁, …, NPₙ`      s3: `Ls including NP₁, …, NPₙ`
//!   s2: `such Ls as NP₁, …, NPₙ`      s4: `NP₁, …, NPₙ, and other Ls`
//!
//! Singleton patterns (completion = one NP; `O` is the object name):
//!   g1: `the L of the O is NP`        g3: `NP is the L of the O`
//!   g2: `the L is NP`                 g4: `NP is the L`
//!
//! Each pattern's *cue phrase* doubles as a validation phrase (§2.2).

use webiq_nlp::chunk::NounPhrase;

/// Where the completion sits relative to the cue phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionSide {
    /// NPs follow the cue (`s1–s3`, `g1–g2`).
    After,
    /// NPs precede the cue (`s4`, `g3–g4`).
    Before,
}

/// Whether a pattern extracts a list or a single instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Set extraction (list of NPs).
    Set,
    /// Singleton extraction (one NP).
    Singleton,
}

/// One extraction pattern, materialised for a specific attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedPattern {
    /// Pattern id (`"s1"`, …, `"g4"`).
    pub id: &'static str,
    /// Set or singleton.
    pub kind: PatternKind,
    /// The cue phrase, lowercased (`"departure cities such as"`).
    pub cue: String,
    /// Which side of the cue the completion lies on.
    pub side: CompletionSide,
}

/// Materialise the eight extraction patterns of Fig. 4 for a noun phrase
/// extracted from an attribute label. `object` is the domain's real-world
/// object name (`"book"`); singleton g1/g3 need it.
pub fn extraction_patterns(np: &NounPhrase, object: &str) -> Vec<MaterializedPattern> {
    let lex = np.text();
    let plural = np.plural_text();
    vec![
        MaterializedPattern {
            id: "s1",
            kind: PatternKind::Set,
            cue: format!("{plural} such as"),
            side: CompletionSide::After,
        },
        MaterializedPattern {
            id: "s2",
            kind: PatternKind::Set,
            cue: format!("such {plural} as"),
            side: CompletionSide::After,
        },
        MaterializedPattern {
            id: "s3",
            kind: PatternKind::Set,
            cue: format!("{plural} including"),
            side: CompletionSide::After,
        },
        MaterializedPattern {
            id: "s4",
            kind: PatternKind::Set,
            cue: format!("and other {plural}"),
            side: CompletionSide::Before,
        },
        MaterializedPattern {
            id: "g1",
            kind: PatternKind::Singleton,
            cue: format!("the {lex} of the {object} is"),
            side: CompletionSide::After,
        },
        MaterializedPattern {
            id: "g2",
            kind: PatternKind::Singleton,
            cue: format!("the {lex} is"),
            side: CompletionSide::After,
        },
        MaterializedPattern {
            id: "g3",
            kind: PatternKind::Singleton,
            cue: format!("is the {lex} of the {object}"),
            side: CompletionSide::Before,
        },
        MaterializedPattern {
            id: "g4",
            kind: PatternKind::Singleton,
            cue: format!("is the {lex}"),
            side: CompletionSide::Before,
        },
    ]
}

/// Validation phrases for an attribute (§2.2): the proximity phrase (the
/// raw label) plus cue-phrase-based ones. Used both to score extraction
/// candidates and as the classifier features of §3.
pub fn validation_phrases(label: &str, np: Option<&NounPhrase>) -> Vec<String> {
    let mut phrases = vec![label.trim().trim_end_matches(':').to_lowercase()];
    if let Some(np) = np {
        let plural = np.plural_text();
        phrases.push(format!("{plural} such as"));
        phrases.push(format!("such {plural} as"));
    }
    phrases.retain(|p| !p.is_empty());
    phrases.dedup();
    phrases
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_nlp::chunk::{classify_label, LabelForm};

    fn np_of(label: &str) -> NounPhrase {
        match classify_label(label) {
            LabelForm::NounPhrase(np) => np,
            other => panic!("expected NP for {label}: {other:?}"),
        }
    }

    #[test]
    fn paper_example_author() {
        // §2.1: label `author` in a bookstore schema → s1 yields
        // "authors such as", g1 yields "the author of the book is".
        let np = np_of("author");
        let pats = extraction_patterns(&np, "book");
        let by_id = |id: &str| pats.iter().find(|p| p.id == id).expect("pattern");
        assert_eq!(by_id("s1").cue, "authors such as");
        assert_eq!(by_id("g1").cue, "the author of the book is");
        assert_eq!(by_id("s2").cue, "such authors as");
        assert_eq!(by_id("s4").cue, "and other authors");
        assert_eq!(by_id("g4").cue, "is the author");
    }

    #[test]
    fn multiword_np_pluralizes_head() {
        let np = np_of("Departure city");
        let pats = extraction_patterns(&np, "flight");
        assert_eq!(pats[0].cue, "departure cities such as");
    }

    #[test]
    fn pp_postmodifier_pluralizes_inner_head() {
        let np = np_of("Class of service");
        let pats = extraction_patterns(&np, "flight");
        assert_eq!(pats[0].cue, "classes of service such as");
        assert_eq!(pats[4].cue, "the class of service of the flight is");
    }

    #[test]
    fn sides_and_kinds() {
        let np = np_of("make");
        let pats = extraction_patterns(&np, "car");
        assert_eq!(
            pats.iter().filter(|p| p.kind == PatternKind::Set).count(),
            4
        );
        assert_eq!(
            pats.iter()
                .filter(|p| p.side == CompletionSide::Before)
                .count(),
            3
        );
    }

    #[test]
    fn validation_phrases_include_proximity_and_cues() {
        let np = np_of("make");
        let phrases = validation_phrases("Make:", Some(&np));
        assert_eq!(phrases[0], "make");
        assert!(phrases.contains(&"makes such as".to_string()));
        assert!(phrases.contains(&"such makes as".to_string()));
    }

    #[test]
    fn validation_phrases_without_np() {
        let phrases = validation_phrases("From", None);
        assert_eq!(phrases, vec!["from"]);
    }
}
