//! The Surface component (§2): discover up to `k` instances for an
//! attribute from the (simulated) Surface Web — extraction phase followed
//! by verification phase.

use webiq_trace::HistKey;
use webiq_web::QueryEngine;

use crate::config::WebIQConfig;
use crate::extract::{self, DomainInfo};
use crate::patterns;
use crate::verify::{self, ValidatedInstance};

/// Result of running the Surface component on one attribute.
#[derive(Debug, Clone, Default)]
pub struct SurfaceResult {
    /// Validated instances, best first (≤ `k`).
    pub instances: Vec<ValidatedInstance>,
    /// Raw candidates extracted before verification.
    pub candidates_extracted: usize,
    /// Candidates removed as statistical outliers.
    pub outliers_removed: usize,
    /// Candidates removed by Web validation.
    pub validation_removed: usize,
    /// Extraction queries posed to the engine.
    pub extraction_queries: usize,
}

impl SurfaceResult {
    /// Did the component gather at least `k` instances (the paper's
    /// success criterion for instance acquisition)?
    pub fn successful(&self, k: usize) -> bool {
        self.instances.len() >= k
    }

    /// The instance texts only.
    pub fn texts(&self) -> Vec<String> {
        self.instances.iter().map(|i| i.text.clone()).collect()
    }
}

/// Run the Surface component for `label`. Observes the per-attribute
/// candidate yield in the `candidates_per_attr` trace histogram; the
/// nested extraction and verification phases record their own spans and
/// counters.
pub fn discover<E: QueryEngine>(
    engine: &E,
    label: &str,
    info: &DomainInfo,
    cfg: &WebIQConfig,
) -> SurfaceResult {
    let outcome = extract::extract_candidates(engine, label, info, cfg);
    webiq_trace::observe(HistKey::CandidatesPerAttr, outcome.candidates.len() as u64);
    if outcome.candidates.is_empty() {
        return SurfaceResult {
            extraction_queries: outcome.queries,
            ..SurfaceResult::default()
        };
    }
    let np = extract::primary_noun_phrase(label);
    let phrases = patterns::validation_phrases(label, np.as_ref());
    let candidates: Vec<String> = outcome.candidates.iter().map(|c| c.text.clone()).collect();
    let verified = verify::verify_candidates(engine, &phrases, &candidates, cfg);
    SurfaceResult {
        instances: verified.instances,
        candidates_extracted: candidates.len(),
        outliers_removed: verified.outliers_removed,
        validation_removed: verified.validation_removed,
        extraction_queries: outcome.queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_data::{corpus, kb};
    use webiq_web::{gen, Corpus, GenConfig, SearchEngine};

    fn airfare_engine() -> SearchEngine {
        let def = kb::domain("airfare").expect("domain");
        let specs = corpus::concept_specs(def);
        let corpus = gen::generate(&specs, &GenConfig::default());
        SearchEngine::new(corpus).expect("engine")
    }

    fn airfare_info() -> DomainInfo {
        DomainInfo {
            object: "flight".into(),
            domain_terms: vec!["airfare".into()],
            sibling_terms: Vec::new(),
        }
    }

    #[test]
    fn discovers_cities_for_departure_city() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let result = discover(&engine, "Departure city", &airfare_info(), &cfg);
        assert!(
            result.successful(cfg.k),
            "only {} instances: {:?}",
            result.instances.len(),
            result.texts()
        );
        // all results are real cities from the pool
        for inst in result.texts() {
            assert!(
                kb::pools::CITIES
                    .iter()
                    .any(|c| c.eq_ignore_ascii_case(&inst)),
                "{inst} is not a city"
            );
        }
    }

    #[test]
    fn prepositional_label_discovers_via_inner_np() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let result = discover(&engine, "From city", &airfare_info(), &cfg);
        assert!(!result.instances.is_empty(), "no instances for 'From city'");
    }

    #[test]
    fn bare_preposition_fails_fast() {
        let engine = airfare_engine();
        let result = discover(&engine, "From", &airfare_info(), &WebIQConfig::default());
        assert!(result.instances.is_empty());
        assert_eq!(result.extraction_queries, 0);
    }

    #[test]
    fn airline_discovery_spans_both_pools() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let result = discover(&engine, "Airline", &airfare_info(), &cfg);
        assert!(result.successful(cfg.k), "got {:?}", result.texts());
        let texts = result.texts();
        let has = |pool: &[&str]| {
            texts
                .iter()
                .any(|t| pool.iter().any(|p| p.eq_ignore_ascii_case(t)))
        };
        assert!(has(kb::pools::AIRLINES_NA) || has(kb::pools::AIRLINES_EU));
    }

    #[test]
    fn unknown_concept_finds_nothing() {
        let engine = airfare_engine();
        let result = discover(
            &engine,
            "Spacecraft registry",
            &airfare_info(),
            &WebIQConfig::default(),
        );
        assert!(result.instances.is_empty());
    }

    #[test]
    fn empty_web_finds_nothing() {
        let engine = SearchEngine::new(Corpus::default()).expect("engine");
        let result = discover(
            &engine,
            "Departure city",
            &airfare_info(),
            &WebIQConfig::default(),
        );
        assert!(result.instances.is_empty());
        assert!(result.extraction_queries > 0);
    }
}
