//! # webiq-core — the WebIQ system (ICDE 2006)
//!
//! WebIQ learns from both the Surface Web and the Deep Web to
//! automatically discover instances for the attributes of Deep-Web query
//! interfaces, lifting the accuracy of interface matching:
//!
//! - [`surface`] — the Surface component (§2): label syntax analysis,
//!   Hearst-style extraction queries ([`patterns`], [`extract`]), and
//!   two-phase verification — statistical outlier removal followed by
//!   PMI-scored Web validation ([`verify`]);
//! - [`attr_surface`] — Attr-Surface (§3): borrow instances from other
//!   attributes and verify them with a validation-based naive Bayes
//!   classifier trained fully automatically;
//! - [`attr_deep`] — Attr-Deep (§4): verify borrowed instances by probing
//!   the attribute's own Deep-Web source and analysing the response page;
//! - [`acquire`] — the §5 strategy combining all three over a domain's
//!   interfaces, with per-component cost accounting for the overhead
//!   analysis;
//! - [`config`] — tunables (k = 10, the one-third probe rule, ablation
//!   switches for the outlier phase, PMI, info-gain thresholds, and the
//!   borrow pre-filters);
//! - [`resilience`] — deterministic fault handling around the engine and
//!   source boundaries: retry with virtual-time backoff, circuit
//!   breaking, and quota-aware graceful degradation (DESIGN.md §13).
//!
//! ## Quickstart
//!
//! ```
//! use webiq_core::{acquire, Components, WebIQConfig};
//! use webiq_data::records::{build_deep_source, RecordOptions};
//! use webiq_data::{corpus, generate_domain, kb, GenOptions};
//! use webiq_web::{gen, GenConfig, SearchEngine};
//!
//! let def = kb::domain("book").expect("domain");
//! let ds = generate_domain(def, &GenOptions::default());
//! let web = SearchEngine::new(gen::generate(
//!     &corpus::concept_specs(def),
//!     &GenConfig::default(),
//! ))
//! .expect("index build succeeds");
//! let sources: Vec<_> = ds
//!     .interfaces
//!     .iter()
//!     .map(|i| build_deep_source(def, i, &RecordOptions::default()))
//!     .collect();
//! let acq = acquire::acquire(
//!     &ds, def, &web, &sources, Components::ALL, &WebIQConfig::default(),
//! )
//! .expect("acquisition succeeds");
//! assert!(acq.report.no_inst_attrs > 0);
//! ```
#![forbid(unsafe_code)]

pub mod acquire;
pub mod attr_deep;
pub mod attr_surface;
pub mod config;
pub mod error;
pub mod extract;
pub mod patterns;
pub mod persist;
pub mod resilience;
pub mod surface;
pub mod verify;

pub use acquire::{Acquisition, AcquisitionReport, ComponentCost};
pub use config::{Components, WebIQConfig};
pub use error::WebIqError;
pub use extract::DomainInfo;
pub use resilience::{Resilience, ResilientEngine, ResilientSource};
pub use surface::SurfaceResult;
