//! Attr-Surface (§3): borrow instances from other attributes and verify
//! them via the Surface Web with a *validation-based naive Bayes
//! classifier*, trained fully automatically.
//!
//! Training (§3.2, Figure 5): positives are A's own instances, negatives
//! the instances of the other attributes on A's interface. Each example is
//! represented by its validation-score vector; T₁ estimates per-feature
//! thresholds by information gain, T₂ (binarized by those thresholds)
//! estimates the Laplace-smoothed probabilities.

use webiq_stats::bayes::NaiveBayes;
use webiq_stats::entropy;
use webiq_trace::Counter;
use webiq_web::QueryEngine;

use crate::config::WebIQConfig;
use crate::extract;
use crate::patterns;
use crate::verify;

/// A trained validation-based classifier for one attribute.
#[derive(Debug, Clone)]
pub struct ValidationClassifier {
    phrases: Vec<String>,
    thresholds: Vec<f64>,
    nb: NaiveBayes,
}

/// A trained classifier's persistable parameter set — what the
/// knowledge store keeps so a later run can rebuild the model via
/// [`webiq_stats::bayes::NaiveBayes::from_params`] without re-issuing
/// a single training query.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Feature count (one per validation phrase).
    pub n_features: u32,
    /// The smoothed class prior P(+).
    pub prior_pos: f64,
    /// Smoothed P(fᵢ = 1 | +) per feature.
    pub p_true_pos: Vec<f64>,
    /// Smoothed P(fᵢ = 1 | −) per feature.
    pub p_true_neg: Vec<f64>,
}

/// Why training could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainFailure {
    /// Fewer than two positive examples (A has too few instances).
    TooFewPositives,
    /// No negative examples (no sibling attribute has instances).
    NoNegatives,
    /// The Naive-Bayes estimator rejected the binarized training set.
    Degenerate,
}

impl ValidationClassifier {
    /// Train for attribute `label` from its own instances (positives) and
    /// sibling-attribute instances (negatives).
    pub fn train<E: QueryEngine>(
        engine: &E,
        label: &str,
        positives: &[String],
        negatives: &[String],
        cfg: &WebIQConfig,
    ) -> Result<Self, TrainFailure> {
        if positives.len() < 2 {
            return Err(TrainFailure::TooFewPositives);
        }
        if negatives.is_empty() {
            return Err(TrainFailure::NoNegatives);
        }
        let np = extract::primary_noun_phrase(label);
        let phrases = patterns::validation_phrases(label, np.as_ref());

        // Step 1: validation vectors for the training set.
        let vector = |x: &str| verify::validation_vector(engine, &phrases, x, cfg.use_pmi);
        let pos_vecs: Vec<Vec<f64>> = positives.iter().map(|x| vector(x)).collect();
        let neg_vecs: Vec<Vec<f64>> = negatives.iter().map(|x| vector(x)).collect();

        // Split each class: first half → T₁ (threshold estimation), rest →
        // T₂ (probability estimation). With tiny classes T₂ falls back to
        // the full set.
        let split = |n: usize| n.div_ceil(2);
        let (p1, p2) = pos_vecs.split_at(split(pos_vecs.len()));
        let (n1, n2) = neg_vecs.split_at(split(neg_vecs.len()));
        let p2: &[Vec<f64>] = if p2.is_empty() { &pos_vecs } else { p2 };
        let n2: &[Vec<f64>] = if n2.is_empty() { &neg_vecs } else { n2 };

        // Step 2: per-feature thresholds on T₁.
        let n_features = phrases.len();
        let thresholds: Vec<f64> = (0..n_features)
            .map(|i| {
                if cfg.info_gain_thresholds {
                    let examples: Vec<(f64, bool)> = p1
                        .iter()
                        .map(|v| (v[i], true))
                        .chain(n1.iter().map(|v| (v[i], false)))
                        .collect();
                    entropy::best_threshold(&examples)
                } else {
                    // ablation: midpoint of the observed score range
                    let all: Vec<f64> = p1.iter().chain(n1.iter()).map(|v| v[i]).collect();
                    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    (lo + hi) / 2.0
                }
            })
            .collect();

        // Step 3: binarize T₂ and estimate the probabilities.
        let binarize =
            |v: &Vec<f64>| -> Vec<bool> { v.iter().zip(&thresholds).map(|(m, t)| m > t).collect() };
        let examples: Vec<(Vec<bool>, bool)> = p2
            .iter()
            .map(|v| (binarize(v), true))
            .chain(n2.iter().map(|v| (binarize(v), false)))
            .collect();
        let nb = NaiveBayes::train(&examples).map_err(|_| TrainFailure::Degenerate)?;
        Ok(ValidationClassifier {
            phrases,
            thresholds,
            nb,
        })
    }

    /// Per-feature thresholds (exposed for inspection/tests).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The trained Bayes parameters, for persistence.
    pub fn params(&self) -> ModelParams {
        ModelParams {
            n_features: self.nb.n_features() as u32,
            prior_pos: self.nb.prior_pos(),
            p_true_pos: self.nb.p_true(true).to_vec(),
            p_true_neg: self.nb.p_true(false).to_vec(),
        }
    }

    /// Posterior probability that `candidate` is an instance of the
    /// attribute.
    pub fn posterior<E: QueryEngine>(&self, engine: &E, candidate: &str, cfg: &WebIQConfig) -> f64 {
        let v = verify::validation_vector(engine, &self.phrases, candidate, cfg.use_pmi);
        let features: Vec<bool> = v.iter().zip(&self.thresholds).map(|(m, t)| m > t).collect();
        self.nb.posterior_pos(&features)
    }

    /// Classify `candidate` (posterior > ½).
    pub fn accepts<E: QueryEngine>(&self, engine: &E, candidate: &str, cfg: &WebIQConfig) -> bool {
        self.posterior(engine, candidate, cfg) > 0.5
    }

    /// [`ValidationClassifier::posterior`] plus the evidence behind it:
    /// the prior, and per feature its raw validation score, threshold,
    /// on/off state, and smoothed class-conditional likelihoods — the
    /// terms the provenance layer records for each accept/reject.
    /// Issues the identical engine queries and computes the bit-equal
    /// posterior, so it can replace `posterior` at a decision site
    /// without perturbing the deterministic counter stream.
    pub fn posterior_explained<E: QueryEngine>(
        &self,
        engine: &E,
        candidate: &str,
        cfg: &WebIQConfig,
    ) -> (f64, Vec<(String, f64)>) {
        let v = verify::validation_vector(engine, &self.phrases, candidate, cfg.use_pmi);
        let features: Vec<bool> = v.iter().zip(&self.thresholds).map(|(m, t)| m > t).collect();
        let mut terms = Vec::new();
        let Some((posterior, evidence)) = self.nb.posterior_explained(&features) else {
            // unreachable by construction (features has one entry per
            // phrase); degrade to the plain posterior rather than panic
            return (self.nb.posterior_pos(&features), terms);
        };
        terms.push(("posterior".to_string(), posterior));
        terms.push(("prior_pos".to_string(), self.nb.prior_pos()));
        for (i, e) in evidence.iter().enumerate() {
            let score = v.get(i).copied().unwrap_or(0.0);
            let thresh = self.thresholds.get(i).copied().unwrap_or(0.0);
            terms.push((format!("f{i}_score"), score));
            terms.push((format!("f{i}_thresh"), thresh));
            terms.push((format!("f{i}_on"), f64::from(u8::from(e.on))));
            terms.push((format!("f{i}_p_pos"), e.p_pos));
            terms.push((format!("f{i}_p_neg"), e.p_neg));
        }
        (posterior, terms)
    }
}

/// Verify borrowed instances for an attribute via the Surface Web: train
/// the classifier, then keep the accepted candidates. Traced as a
/// `bayes_verify` span; training failures and per-candidate verdicts are
/// tallied under [`Counter::BayesTrainFailed`],
/// [`Counter::BayesAccepted`], and [`Counter::BayesRejected`].
pub fn verify_borrowed<E: QueryEngine>(
    engine: &E,
    label: &str,
    positives: &[String],
    negatives: &[String],
    borrowed: &[String],
    cfg: &WebIQConfig,
) -> Vec<String> {
    verify_borrowed_with_model(engine, label, positives, negatives, borrowed, cfg).0
}

/// [`verify_borrowed`] plus the trained classifier's parameters (for the
/// knowledge store; `None` when training failed). Issues the identical
/// engine queries, records the identical provenance, and bumps the
/// identical counters in the identical order — `verify_borrowed` is a
/// thin wrapper over this, so the two can never diverge.
pub fn verify_borrowed_with_model<E: QueryEngine>(
    engine: &E,
    label: &str,
    positives: &[String],
    negatives: &[String],
    borrowed: &[String],
    cfg: &WebIQConfig,
) -> (Vec<String>, Option<ModelParams>) {
    let _span = webiq_trace::span("bayes_verify");
    let Ok(classifier) = ValidationClassifier::train(engine, label, positives, negatives, cfg)
    else {
        webiq_trace::incr(Counter::BayesTrainFailed);
        return (Vec::new(), None);
    };
    let accepted = borrowed
        .iter()
        .filter(|b| {
            let (posterior, terms) = classifier.posterior_explained(engine, b, cfg);
            let accepted = posterior > 0.5;
            let refs: Vec<(&str, f64)> = terms.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            webiq_why::record::bayes_verify(b, accepted, &refs);
            webiq_trace::incr(if accepted {
                Counter::BayesAccepted
            } else {
                Counter::BayesRejected
            });
            accepted
        })
        .cloned()
        .collect();
    (accepted, Some(classifier.params()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_data::{corpus, kb};
    use webiq_web::{gen, GenConfig, SearchEngine};

    fn airfare_engine() -> SearchEngine {
        let def = kb::domain("airfare").expect("domain");
        let specs = corpus::concept_specs(def);
        SearchEngine::new(gen::generate(&specs, &GenConfig::default())).expect("engine")
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn aer_lingus_is_accepted_as_airline() {
        // the paper's running example: borrow `Aer Lingus` (an instance of
        // B₃ = Carrier) for A₅ = Airline, whose own instances are North
        // American. Non-instances come from the sibling attributes.
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let positives = strings(&["Air Canada", "American", "Delta", "United"]);
        let negatives = strings(&["Economy", "First Class", "Jan", "1"]);
        let borrowed = strings(&["Aer Lingus", "Lufthansa", "Economy", "Jan"]);
        let accepted = verify_borrowed(&engine, "Airline", &positives, &negatives, &borrowed, &cfg);
        assert!(
            accepted.contains(&"Aer Lingus".to_string()),
            "accepted: {accepted:?}"
        );
        assert!(
            !accepted.contains(&"Economy".to_string()),
            "accepted: {accepted:?}"
        );
        assert!(
            !accepted.contains(&"Jan".to_string()),
            "accepted: {accepted:?}"
        );
    }

    #[test]
    fn classifier_separates_instances_from_non_instances() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let classifier = ValidationClassifier::train(
            &engine,
            "Airline",
            &strings(&["Air Canada", "American", "Delta", "United"]),
            &strings(&["Economy", "First Class", "Jan", "1"]),
            &cfg,
        )
        .expect("train");
        // Average over several held-out candidates: individual tail
        // airlines can be too rare on the simulated Web to clear every
        // feature threshold.
        let avg = |xs: &[&str]| {
            xs.iter()
                .map(|x| classifier.posterior(&engine, x, &cfg))
                .sum::<f64>()
                / xs.len() as f64
        };
        let p_airline = avg(&["Northwest", "Southwest", "Continental"]);
        let p_noise = avg(&["Round trip", "Economy", "Feb"]);
        assert!(
            p_airline > p_noise,
            "airline={p_airline:.3} noise={p_noise:.3}"
        );
    }

    #[test]
    fn too_few_positives_fails_training() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let r = ValidationClassifier::train(
            &engine,
            "Airline",
            &strings(&["Delta"]),
            &strings(&["Economy"]),
            &cfg,
        );
        assert_eq!(r.unwrap_err(), TrainFailure::TooFewPositives);
    }

    #[test]
    fn no_negatives_fails_training() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let r = ValidationClassifier::train(
            &engine,
            "Airline",
            &strings(&["Delta", "United"]),
            &[],
            &cfg,
        );
        assert_eq!(r.unwrap_err(), TrainFailure::NoNegatives);
    }

    #[test]
    fn thresholds_have_one_per_phrase() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let classifier = ValidationClassifier::train(
            &engine,
            "Airline",
            &strings(&["Air Canada", "American", "Delta", "United"]),
            &strings(&["Economy", "First Class", "Jan", "1"]),
            &cfg,
        )
        .expect("train");
        // proximity + two cue phrases
        assert_eq!(classifier.thresholds().len(), 3);
    }

    #[test]
    fn midpoint_ablation_still_trains() {
        let engine = airfare_engine();
        let cfg = WebIQConfig {
            info_gain_thresholds: false,
            ..WebIQConfig::default()
        };
        let accepted = verify_borrowed(
            &engine,
            "Airline",
            &strings(&["Air Canada", "American", "Delta", "United"]),
            &strings(&["Economy", "First Class", "Jan", "1"]),
            &strings(&["Aer Lingus"]),
            &cfg,
        );
        // the midpoint variant may be less accurate but must not crash
        assert!(accepted.len() <= 1);
    }

    #[test]
    fn empty_borrowed_list() {
        let engine = airfare_engine();
        let cfg = WebIQConfig::default();
        let accepted = verify_borrowed(
            &engine,
            "Airline",
            &strings(&["Delta", "United"]),
            &strings(&["Economy"]),
            &[],
            &cfg,
        );
        assert!(accepted.is_empty());
    }
}
