//! The §5 acquisition strategy: how WebIQ's three components are combined
//! to gather instances for every attribute across a domain's interfaces.
//!
//! Per attribute X₁:
//! 1. **no instances** → discover from the Surface Web (Surface). If fewer
//!    than k instances were gathered, borrow from other attributes and
//!    validate via the Deep Web (Attr-Deep) by probing X₁'s own source.
//! 2. **pre-defined instances** → borrow from other attributes and
//!    validate via the Surface Web (Attr-Surface); the Deep Web cannot be
//!    used because X₁ only accepts its pre-defined values.
//!
//! Borrowing is pre-filtered (§5): for case 1 the candidate's label must
//! resemble X₁'s (unless X₁'s label carries no content words at all — the
//! `From`-style labels for which only probing can decide) and its domain
//! must differ from every instance-bearing sibling on X₁'s interface; for
//! case 2 the candidate must share at least one very similar value with
//! X₁'s domain.

// lint:deterministic

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use webiq_data::interface::{AttrRef, Attribute, Dataset};
use webiq_data::DomainDef;
use webiq_deep::DeepSource;
use webiq_fault::{FaultConfig, QuotaTracker};
use webiq_match::domsim;
use webiq_match::labelsim;
use webiq_prof::Stage;
use webiq_trace::timing::Stopwatch;
use webiq_trace::{Counter, Gauge, HistKey, ItemBuf, MetricSet};
use webiq_web::{QueryEngine, SearchEngine};

use webiq_store::{BorrowRecord, InstanceRecord, ModelRecord, Record, RunCompleteRecord};

use crate::attr_deep;
use crate::attr_surface;
use crate::config::{Components, WebIQConfig};
use crate::error::WebIqError;
use crate::extract::DomainInfo;
use crate::persist;
use crate::resilience::{Resilience, ResilientEngine, ResilientSource};
use crate::surface;

/// Per-component accounting for the overhead analysis (Fig. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentCost {
    /// Wall-clock seconds spent in the component.
    pub secs: f64,
    /// Search-engine queries issued (search + hit-count calls).
    pub engine_queries: u64,
    /// Deep-Web probe submissions issued.
    pub probes: u64,
}

/// Acquisition statistics and costs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AcquisitionReport {
    /// Attributes that had no pre-defined instances.
    pub no_inst_attrs: usize,
    /// Of those, how many reached k instances with Surface alone
    /// (Table 1, column 6).
    pub surface_success: usize,
    /// Of those, how many reached k after Surface + Deep-validated
    /// borrowing (Table 1, column 7).
    pub surface_deep_success: usize,
    /// Attributes with pre-defined instances that gained at least one
    /// borrowed instance through Attr-Surface.
    pub attr_surface_enriched: usize,
    /// Cost of the Surface component.
    pub surface_cost: ComponentCost,
    /// Cost of the Attr-Surface component.
    pub attr_surface_cost: ComponentCost,
    /// Cost of the Attr-Deep component.
    pub attr_deep_cost: ComponentCost,
    /// Attributes whose processing hit a resilience fallback (retry
    /// exhaustion, open breaker, or quota denial) and kept only partial
    /// results. Zero whenever fault injection is disabled.
    pub degraded_attrs: usize,
    /// Retry attempts spent across the run (virtual-time backoff).
    pub retries: u64,
    /// Faults injected across the run (all kinds, both boundaries).
    pub faults_injected: u64,
}

impl AcquisitionReport {
    /// Derive the report's deterministic fields from a set of trace
    /// counters (the merged per-item deltas of one acquisition run). The
    /// wall-clock `secs` fields are *not* counters — they stay zero here
    /// and are filled in by [`acquire`] from its stopwatches — so the
    /// report is the counters' aggregate by construction: there is one
    /// source of truth for every number shared between the two views.
    pub fn from_metrics(m: &MetricSet) -> Self {
        AcquisitionReport {
            no_inst_attrs: m.get(Counter::AttrsNoInstance) as usize,
            surface_success: m.get(Counter::SurfaceSuccess) as usize,
            surface_deep_success: m.get(Counter::SurfaceDeepSuccess) as usize,
            attr_surface_enriched: m.get(Counter::AttrSurfaceEnriched) as usize,
            surface_cost: ComponentCost {
                engine_queries: m.get(Counter::SurfaceQueries),
                ..ComponentCost::default()
            },
            attr_surface_cost: ComponentCost {
                engine_queries: m.get(Counter::AttrSurfaceQueries),
                ..ComponentCost::default()
            },
            attr_deep_cost: ComponentCost {
                probes: m.get(Counter::AttrDeepProbes),
                ..ComponentCost::default()
            },
            degraded_attrs: m.get(Counter::FaultAttrsDegraded) as usize,
            retries: m.get(Counter::FaultRetryAttempt),
            faults_injected: m.get(Counter::FaultInjected),
        }
    }

    /// Surface-only success rate over instance-less attributes (%).
    pub fn surface_success_rate(&self) -> f64 {
        percent(self.surface_success, self.no_inst_attrs)
    }

    /// Surface + Deep success rate over instance-less attributes (%).
    pub fn surface_deep_success_rate(&self) -> f64 {
        percent(self.surface_deep_success, self.no_inst_attrs)
    }
}

fn percent(n: usize, of: usize) -> f64 {
    if of == 0 {
        0.0
    } else {
        100.0 * n as f64 / of as f64
    }
}

/// The outcome of running acquisition over a dataset.
#[derive(Debug, Clone, Default)]
pub struct Acquisition {
    /// Instances acquired per attribute (beyond its pre-defined ones).
    pub acquired: BTreeMap<AttrRef, Vec<String>>,
    /// Attributes marked degraded: some stage exhausted its retry
    /// budget, tripped a breaker, or was denied by the quota, and the
    /// attribute kept whatever partial instances it had instead of
    /// aborting the run. Empty whenever fault injection is disabled.
    pub degraded: BTreeSet<AttrRef>,
    /// Statistics and per-component costs.
    pub report: AcquisitionReport,
}

impl Acquisition {
    /// The acquired instances for an attribute (empty slice if none).
    pub fn instances_for(&self, r: AttrRef) -> &[String] {
        self.acquired.get(&r).map_or(&[], Vec::as_slice)
    }
}

/// Case-insensitive containment check.
fn contains_ci(haystack: &[String], needle: &str) -> bool {
    haystack.iter().any(|h| h.eq_ignore_ascii_case(needle))
}

/// Content keywords from the labels of the other attributes on X₁'s
/// interface — the `+title +isbn` material of §2.1's query scoping.
/// Deduplicated through a set (first-seen order preserved) so wide
/// interfaces don't pay a quadratic membership scan.
fn sibling_terms(ds: &Dataset, r1: AttrRef) -> Vec<String> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    for (j, a) in ds.interfaces[r1.0].attributes.iter().enumerate() {
        if j == r1.1 {
            continue;
        }
        for word in webiq_nlp::words_lower(&a.label) {
            if !webiq_nlp::stopwords::is_stopword(&word) && seen.insert(word.clone()) {
                out.push(word);
                break; // one keyword per sibling label, like the paper
            }
        }
    }
    out
}

/// Borrow candidates for an instance-less attribute (§5 case 1), ordered
/// by descending label similarity: candidates must have instances, live on
/// a different interface, carry a similar label (unless X₁'s label has no
/// content words), and their domain must differ from every instance-bearing
/// sibling on X₁'s interface. When the label filter eliminates everything
/// (hard-synonym labels), it is dropped and probing decides.
pub fn case1_candidates(ds: &Dataset, r1: AttrRef, label: &str, cfg: &WebIQConfig) -> Vec<AttrRef> {
    let label_vec_empty = labelsim::label_vector(label).is_empty();
    let siblings: Vec<&Vec<String>> = ds.interfaces[r1.0]
        .attributes
        .iter()
        .enumerate()
        .filter(|(j, a)| *j != r1.1 && a.has_instances())
        .map(|(_, a)| &a.instances)
        .collect();

    let collect = |use_label_filter: bool| {
        let mut scored: Vec<(f64, AttrRef)> = Vec::new();
        for (ri, ai) in ds.attributes() {
            if ri.0 == r1.0 || !ai.has_instances() {
                continue;
            }
            let ls = labelsim::label_sim(label, &ai.label);
            if cfg.borrow_prefilter {
                // Labels must be similar — unless X₁'s label has no content
                // words (bare prepositions), where only probing can decide.
                if use_label_filter && !label_vec_empty && ls < cfg.borrow_label_sim {
                    continue;
                }
                // The candidate's domain must differ from every
                // instance-bearing sibling of X₁ (if a sibling already
                // covers that domain, X₁ is unlikely to be that concept).
                let clashes = siblings
                    .iter()
                    .any(|y| domsim::dom_sim(&ai.instances, y) > cfg.borrow_sibling_dom_sim);
                if clashes {
                    continue;
                }
            }
            scored.push((ls, ri));
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, r)| r).collect::<Vec<_>>()
    };
    let filtered = collect(true);
    if !filtered.is_empty() {
        return filtered;
    }
    // A hard-synonym label (`Manufacturer` among `Make`s) has *no*
    // label-similar candidate by definition; fall back to the
    // sibling-domain filter alone and let Deep-Web probing decide.
    collect(false)
}

/// Borrow candidates for an attribute with pre-defined instances (§5 case
/// 2): the candidate must share at least one very similar value pair
/// ("two values, one from each domain, which are very similar").
pub fn case2_candidates(
    ds: &Dataset,
    r1: AttrRef,
    values: &[String],
    cfg: &WebIQConfig,
) -> Vec<AttrRef> {
    let mut out = Vec::new();
    for (ri, ai) in ds.attributes() {
        if ri.0 == r1.0 || !ai.has_instances() {
            continue;
        }
        if cfg.borrow_prefilter {
            let similar_pair = values.iter().any(|v| {
                ai.instances
                    .iter()
                    .any(|w| domsim::value_similarity(v, w) >= 0.85)
            });
            if !similar_pair {
                continue;
            }
        }
        out.push(ri);
    }
    out
}

/// What processing one attribute produced. Work items are independent, so
/// a pool of workers can compute these in any order; the merge back into
/// [`Acquisition`] happens sequentially in attribute order, making the
/// parallel result identical to the sequential one. Success flags and
/// query counts live in the item's trace counters (its [`ItemBuf`]); only
/// the acquired instances and the report-only wall-clock secs ride here.
enum ItemOutcome {
    /// An instance-less attribute (§5 case 1).
    NoInst {
        got: Vec<String>,
        surface_secs: f64,
        deep_secs: f64,
        /// Deep-Web probe verdicts, `(lender reference, accepted)` in
        /// probe order — the expensive facts the knowledge store keeps.
        borrows: Vec<(String, bool)>,
    },
    /// A pre-defined attribute run through Attr-Surface (§5 case 2).
    Predefined {
        accepted: Vec<String>,
        secs: f64,
        /// The trained validation classifier's parameters, if training
        /// succeeded — persisted so a later run can rebuild the model
        /// without re-issuing its training queries.
        model: Option<attr_surface::ModelParams>,
    },
    /// A pre-defined attribute with Attr-Surface disabled.
    Skipped,
}

/// The shared, read-only context every acquisition work item sees.
struct AcquireCtx<'a> {
    ds: &'a Dataset,
    info: &'a DomainInfo,
    engine: &'a SearchEngine,
    sources: &'a [DeepSource],
    components: Components,
    cfg: &'a WebIQConfig,
    /// The resolved fault configuration (env knobs applied once).
    fault: &'a FaultConfig,
    /// The run-wide query meter — the one shared piece of resilience
    /// state (one run, one API key).
    quota: &'a QuotaTracker,
}

/// A candidate reference that no longer resolves in the dataset — an
/// internal inconsistency surfaced as an error instead of a panic.
fn dangling(cand: AttrRef) -> WebIqError {
    WebIqError::MissingAttribute {
        interface: cand.0,
        attribute: cand.1,
    }
}

/// Search-engine traffic (search + hit-count calls) recorded in a
/// counter delta — the per-section query accounting of Fig. 8.
fn engine_queries(delta: &MetricSet) -> u64 {
    delta.get(Counter::EngineSearchIssued) + delta.get(Counter::EngineHitIssued)
}

/// Process one attribute — the work-item wrapper. Opens the item's trace
/// (an `attribute` root span plus a counter baseline) and returns the
/// detached buffer alongside the outcome; the merge loop submits buffers
/// in attribute order, which is what keeps the event stream and the
/// derived report byte-identical for any worker count.
fn process_attribute(
    ctx: &AcquireCtx<'_>,
    r1: AttrRef,
    a1: &Attribute,
) -> Result<(ItemOutcome, bool, ItemBuf), WebIqError> {
    let item = ctx.cfg.tracer.item("attribute", &a1.label);
    webiq_trace::incr(Counter::AttrsTotal);
    let (outcome, degraded) = if ctx.fault.enabled() {
        // A fresh per-item resilience bundle: the clock, budget, and
        // breakers evolve single-threadedly inside this item, keeping
        // the outcome independent of the worker count.
        let res = Resilience::new(ctx.fault, ctx.quota);
        let engine = ResilientEngine::new(ctx.engine, &res);
        let outcome = attribute_body(ctx, r1, a1, &engine, Some(&res))?;
        if res.degraded() {
            webiq_trace::incr(Counter::FaultAttrsDegraded);
        }
        (outcome, res.degraded())
    } else {
        (attribute_body(ctx, r1, a1, ctx.engine, None)?, false)
    };
    Ok((outcome, degraded, item.finish()))
}

/// The §5 strategy body for one attribute. Reads shared state only
/// (`engine` and `sources` are internally synchronised); query accounting
/// uses the calling thread's trace counters, so the numbers are
/// deterministic whatever the cache state or worker count.
fn attribute_body<E: QueryEngine>(
    ctx: &AcquireCtx<'_>,
    r1: AttrRef,
    a1: &Attribute,
    engine: &E,
    res: Option<&Resilience<'_>>,
) -> Result<ItemOutcome, WebIqError> {
    let &AcquireCtx {
        ds,
        info,
        sources,
        components,
        cfg,
        ..
    } = ctx;
    if !a1.has_instances() {
        webiq_trace::incr(Counter::AttrsNoInstance);
        let mut got: Vec<String> = Vec::new();
        let mut surface_secs = 0.0;
        let mut deep_secs = 0.0;
        let mut borrows: Vec<(String, bool)> = Vec::new();

        // Step 1.a: discover from the Surface Web, scoping queries with
        // the domain terms and (when configured) keywords from the
        // sibling attributes' labels (§2.1).
        if components.surface {
            let _span = webiq_trace::span("surface");
            let before = webiq_trace::snapshot();
            let sw = Stopwatch::start();
            let mut attr_info = info.clone();
            attr_info.sibling_terms = sibling_terms(ds, r1);
            let result = webiq_prof::time(Stage::Extract, || {
                surface::discover(engine, &a1.label, &attr_info, cfg)
            });
            surface_secs = sw.elapsed_secs();
            let delta = webiq_trace::snapshot().diff(&before);
            webiq_trace::add(Counter::SurfaceQueries, engine_queries(&delta));
            got = result.texts();
        }
        let surface_success = got.len() >= cfg.k;
        if surface_success {
            webiq_trace::incr(Counter::SurfaceSuccess);
        }
        let mut surface_deep_success = surface_success;
        if !surface_success && components.attr_deep && !sources.is_empty() {
            // Step 1.b: borrow and validate via the Deep Web. Probing is
            // expensive, so candidates whose domain resembles one already
            // probed (either way) are skipped — each probe round-trip
            // then tests a genuinely new domain.
            let _span = webiq_trace::span("attr_deep");
            let before = webiq_trace::snapshot();
            let sw = Stopwatch::start();
            let candidates = case1_candidates(ds, r1, &a1.label, cfg);
            let mut accepted_domains: Vec<&Vec<String>> = Vec::new();
            let mut failed_domains: Vec<&Vec<String>> = Vec::new();
            let mut tried = 0usize;
            for cand in candidates {
                if tried >= 12 {
                    break;
                }
                webiq_trace::incr(Counter::BorrowCandidates);
                let lender = ds.attribute(cand).ok_or_else(|| dangling(cand))?;
                let inst = &lender.instances;
                let lender_ref = format!("{}/{} {}", cand.0, cand.1, lender.label);
                let take_all = |got: &mut Vec<String>| {
                    for v in inst {
                        if !contains_ci(got, v) {
                            got.push(v.clone());
                        }
                    }
                };
                // Same domain as an already-validated one → borrow
                // without re-probing; same as a failed one → skip. The best
                // similarity (not just the >0.5 test) is recorded as the
                // decision's evidence.
                let best_accepted = accepted_domains
                    .iter()
                    .map(|p| domsim::dom_sim(p, inst))
                    .fold(0.0f64, f64::max);
                let best_failed = failed_domains
                    .iter()
                    .map(|p| domsim::dom_sim(p, inst))
                    .fold(0.0f64, f64::max);
                if best_accepted > 0.5 {
                    webiq_trace::incr(Counter::BorrowReused);
                    webiq_why::record::borrow_reuse(
                        &lender_ref,
                        true,
                        &[("dom_sim", best_accepted), ("threshold", 0.5)],
                    );
                    take_all(&mut got);
                } else if best_failed > 0.5 {
                    webiq_trace::incr(Counter::BorrowSkipped);
                    webiq_why::record::borrow_reuse(
                        &lender_ref,
                        false,
                        &[("dom_sim", best_failed), ("threshold", 0.5)],
                    );
                    continue;
                } else {
                    tried += 1;
                    webiq_trace::incr(Counter::BorrowProbed);
                    let outcome = webiq_prof::time(Stage::Borrow, || match res {
                        Some(res) => attr_deep::validate_borrowed(
                            &ResilientSource::new(&sources[r1.0], res),
                            &a1.name,
                            inst,
                            cfg,
                        ),
                        None => attr_deep::validate_borrowed(&sources[r1.0], &a1.name, inst, cfg),
                    });
                    borrows.push((lender_ref.clone(), outcome.accepted));
                    webiq_why::record::probe_verify(
                        &lender_ref,
                        outcome.accepted,
                        &[
                            ("probed", outcome.probed as f64),
                            ("successes", outcome.successes as f64),
                            (
                                "ratio",
                                outcome.successes as f64 / outcome.probed.max(1) as f64,
                            ),
                            ("accept_ratio", cfg.probe_accept_ratio),
                        ],
                    );
                    if outcome.accepted {
                        webiq_trace::incr(Counter::BorrowAccepted);
                        accepted_domains.push(inst);
                        take_all(&mut got);
                    } else {
                        webiq_trace::incr(Counter::BorrowRejected);
                        failed_domains.push(inst);
                    }
                }
                if got.len() >= cfg.k {
                    break;
                }
            }
            deep_secs = sw.elapsed_secs();
            let probes = webiq_trace::snapshot()
                .diff(&before)
                .get(Counter::ProbesIssued);
            webiq_trace::add(Counter::AttrDeepProbes, probes);
            webiq_trace::observe(HistKey::ProbesPerAttr, probes);
            surface_deep_success = got.len() >= cfg.k;
        }
        if surface_deep_success {
            webiq_trace::incr(Counter::SurfaceDeepSuccess);
        }
        Ok(ItemOutcome::NoInst {
            got,
            surface_secs,
            deep_secs,
            borrows,
        })
    } else if components.attr_surface {
        // Step 2: borrow for a pre-defined attribute, validate via the
        // Surface Web (the Deep Web cannot be probed with values outside
        // the pre-defined list).
        webiq_trace::incr(Counter::AttrsPredefined);
        let _span = webiq_trace::span("attr_surface");
        let before = webiq_trace::snapshot();
        let sw = Stopwatch::start();
        let candidates = case2_candidates(ds, r1, &a1.instances, cfg);
        let mut pool: Vec<String> = Vec::new();
        for cand in candidates.into_iter().take(8) {
            for v in &ds.attribute(cand).ok_or_else(|| dangling(cand))?.instances {
                if !contains_ci(&a1.instances, v) && !contains_ci(&pool, v) {
                    pool.push(v.clone());
                }
            }
        }
        pool.truncate(15);
        let mut accepted = Vec::new();
        let mut model = None;
        if !pool.is_empty() {
            let negatives: Vec<String> = ds.interfaces[r1.0]
                .attributes
                .iter()
                .enumerate()
                .filter(|(j, a)| *j != r1.1 && a.has_instances())
                .flat_map(|(_, a)| a.instances.iter().take(2).cloned())
                .collect();
            (accepted, model) = webiq_prof::time(Stage::Bayes, || {
                attr_surface::verify_borrowed_with_model(
                    engine,
                    &a1.label,
                    &a1.instances,
                    &negatives,
                    &pool,
                    cfg,
                )
            });
        }
        let delta = webiq_trace::snapshot().diff(&before);
        webiq_trace::add(Counter::AttrSurfaceQueries, engine_queries(&delta));
        if !accepted.is_empty() {
            webiq_trace::incr(Counter::AttrSurfaceEnriched);
        }
        Ok(ItemOutcome::Predefined {
            accepted,
            secs: sw.elapsed_secs(),
            model,
        })
    } else {
        webiq_trace::incr(Counter::AttrsSkipped);
        Ok(ItemOutcome::Skipped)
    }
}

/// Run the full §5 acquisition strategy over a domain's dataset.
///
/// `sources[i]` must be the Deep-Web source behind `ds.interfaces[i]`
/// (empty slice disables Attr-Deep regardless of `components`).
///
/// Attributes are independent work items dispatched over a scoped worker
/// pool ([`WebIQConfig::resolved_threads`] workers; see also the
/// `WEBIQ_THREADS` env var). Outcomes — including each item's trace
/// buffer — are merged in attribute order, so the acquired-instance maps,
/// every report counter except the wall-clock `secs` fields, and the
/// emitted trace-event stream are byte-identical to a single-threaded
/// run. The report itself is [`AcquisitionReport::from_metrics`] over the
/// merged per-item counter deltas, so it always equals the trace
/// aggregate.
///
/// # Errors
///
/// Returns [`WebIqError::MissingAttribute`] if a borrow candidate no
/// longer resolves in the dataset, and [`WebIqError::WorkerFailed`] if an
/// acquisition worker terminates abnormally.
pub fn acquire(
    ds: &Dataset,
    def: &DomainDef,
    engine: &SearchEngine,
    sources: &[DeepSource],
    components: Components,
    cfg: &WebIQConfig,
) -> Result<Acquisition, WebIqError> {
    let info = DomainInfo {
        object: def.object.to_string(),
        domain_terms: def.domain_terms.iter().map(|s| (*s).to_string()).collect(),
        sibling_terms: Vec::new(), // filled per attribute in process_attribute
    };

    let fault = cfg.resolved_fault();

    // Warm start: a completed run with an identical input fingerprint
    // replays from the store — byte-identical acquired instances and
    // report, no engine traffic. The fingerprint covers everything that
    // determines the output (dataset, components, config knobs, fault
    // plan, corpus size) except the worker count, which never changes
    // the output (see DESIGN.md).
    let fingerprint =
        persist::run_fingerprint(ds, def, components, cfg, &fault, engine.doc_count() as u64);
    if let Some(store) = &cfg.store {
        if let Some(warm) = store.warm_run(&ds.domain, fingerprint) {
            webiq_trace::incr(Counter::StoreWarmHit);
            return Ok(persist::rebuild_acquisition(&warm));
        }
        webiq_trace::incr(Counter::StoreWarmMiss);
    }

    let quota = QuotaTracker::new(fault.daily_quota);
    let ctx = AcquireCtx {
        ds,
        info: &info,
        engine,
        sources,
        components,
        cfg,
        fault: &fault,
        quota: &quota,
    };
    let items: Vec<(AttrRef, &Attribute)> = ds.attributes().collect();
    cfg.tracer
        .gauge(Gauge::Interfaces, ds.interfaces.len() as u64);
    cfg.tracer.gauge(Gauge::Attributes, items.len() as u64);
    cfg.tracer
        .gauge(Gauge::CorpusDocs, engine.doc_count() as u64);
    if let Some(obs) = &cfg.obs {
        obs.gauge(Gauge::Interfaces, ds.interfaces.len() as u64);
        obs.gauge(Gauge::Attributes, items.len() as u64);
        obs.gauge(Gauge::CorpusDocs, engine.doc_count() as u64);
    }
    let scope = cfg.tracer.scope("acquire", &ds.domain);
    let workers = cfg.resolved_threads().min(items.len().max(1));
    type Item = (ItemOutcome, bool, ItemBuf);
    let outcomes: Vec<Item> = if workers <= 1 {
        let before = webiq_trace::snapshot();
        let out = items
            .iter()
            .map(|&(r1, a1)| process_attribute(&ctx, r1, a1))
            .collect::<Result<_, _>>()?;
        let delta = webiq_trace::snapshot().diff(&before);
        webiq_prof::record_worker(items.len() as u64, engine_queries(&delta));
        out
    } else {
        // Work-stealing by atomic index: each worker pulls the next
        // unclaimed attribute, tags its outcome with the item index, and
        // the merge below re-establishes attribute order.
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, Item)> =
            std::thread::scope(|scope| -> Result<Vec<(usize, Item)>, WebIqError> {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (items, ctx, next) = (&items, &ctx, &next);
                        scope.spawn(move || {
                            let before = webiq_trace::snapshot();
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&(r1, a1)) = items.get(i) else { break };
                                local.push((i, process_attribute(ctx, r1, a1)));
                            }
                            // Per-worker load accounting: items claimed and
                            // engine traffic issued feed the imbalance
                            // telemetry behind `webiq_prof_worker_*`.
                            let delta = webiq_trace::snapshot().diff(&before);
                            webiq_prof::record_worker(local.len() as u64, engine_queries(&delta));
                            local
                        })
                    })
                    .collect();
                let mut indexed = Vec::with_capacity(items.len());
                for h in handles {
                    let local = h.join().map_err(|_| WebIqError::WorkerFailed {
                        stage: "acquisition",
                    })?;
                    for (i, res) in local {
                        indexed.push((i, res?));
                    }
                }
                Ok(indexed)
            })?;
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, o)| o).collect()
    };

    // The deterministic merge: fold item buffers into the run totals and
    // the tracer (assigning the logical clock here, in attribute order),
    // and collect the acquired instances and wall-clock costs.
    let mut acq = Acquisition::default();
    let mut total = MetricSet::new();
    let (mut surface_secs, mut attr_surface_secs, mut attr_deep_secs) = (0.0, 0.0, 0.0);
    for (&(r1, a1), (outcome, degraded, buf)) in items.iter().zip(outcomes) {
        if degraded {
            acq.degraded.insert(r1);
        }
        total.merge(buf.totals());
        // Publish the same deterministic per-item deltas the tracer
        // receives, so a post-run /metrics scrape matches the trace at
        // any worker count.
        if let Some(obs) = &cfg.obs {
            obs.publish_item(buf.totals(), buf.hists());
        }
        cfg.tracer.submit(buf);
        // Persist this item's facts through the store's fsync'd log.
        // Writes happen only here, in the single-threaded merge loop,
        // so the log's record order is attribute order at any worker
        // count. A failed write aborts the run with the store's path
        // and operation attached — the run-complete marker below is
        // then never written, so a later run re-acquires cold instead
        // of trusting a partial log.
        let acquired_values = match (&outcome, &cfg.store) {
            (ItemOutcome::NoInst { got, borrows, .. }, Some(store)) => {
                for (lender, accepted) in borrows {
                    store.put(Record::Borrow(BorrowRecord {
                        domain: ds.domain.clone(),
                        attr: a1.label.clone(),
                        lender: lender.clone(),
                        accepted: *accepted,
                    }))?;
                }
                Some(got)
            }
            (
                ItemOutcome::Predefined {
                    accepted, model, ..
                },
                Some(store),
            ) => {
                if let Some(m) = model {
                    store.put(Record::Model(ModelRecord {
                        domain: ds.domain.clone(),
                        attr: a1.label.clone(),
                        n_features: m.n_features,
                        prior_pos: m.prior_pos,
                        p_true_pos: m.p_true_pos.clone(),
                        p_true_neg: m.p_true_neg.clone(),
                    }))?;
                }
                Some(accepted)
            }
            _ => None,
        };
        if let (Some(values), Some(store)) = (acquired_values, &cfg.store) {
            if !values.is_empty() || degraded {
                store.put(Record::Instances(InstanceRecord {
                    domain: ds.domain.clone(),
                    fingerprint,
                    iface: r1.0 as u32,
                    attr: r1.1 as u32,
                    values: values.clone(),
                    degraded,
                }))?;
            }
        }
        match outcome {
            ItemOutcome::NoInst {
                got,
                surface_secs: s,
                deep_secs: d,
                ..
            } => {
                surface_secs += s;
                attr_deep_secs += d;
                if !got.is_empty() {
                    acq.acquired.insert(r1, got);
                }
            }
            ItemOutcome::Predefined { accepted, secs, .. } => {
                attr_surface_secs += secs;
                if !accepted.is_empty() {
                    acq.acquired.insert(r1, accepted);
                }
            }
            ItemOutcome::Skipped => {}
        }
    }
    acq.report = AcquisitionReport::from_metrics(&total);
    acq.report.surface_cost.secs = surface_secs;
    acq.report.attr_surface_cost.secs = attr_surface_secs;
    acq.report.attr_deep_cost.secs = attr_deep_secs;
    if let Some(store) = &cfg.store {
        // The commit marker: its counters are both the warm-start
        // report source and the proof the run persisted completely. It
        // is the last record, so any crash before this point leaves no
        // marker and the next run misses.
        store.put(Record::RunComplete(RunCompleteRecord {
            domain: ds.domain.clone(),
            fingerprint,
            counters: persist::counter_pairs(&total),
        }))?;
        store.compact()?;
    }
    if let Some(obs) = &cfg.obs {
        obs.end_epoch();
    }
    drop(scope);
    Ok(acq)
}

#[cfg(test)]
mod candidate_tests {
    use super::*;
    use webiq_data::interface::{Attribute, Interface};

    fn attr(name: &str, label: &str, concept: &str, instances: &[&str]) -> Attribute {
        Attribute {
            name: name.into(),
            label: label.into(),
            concept: concept.into(),
            instances: instances.iter().map(|s| (*s).to_string()).collect(),
            default: None,
        }
    }

    /// Interface 0: text `From` + month select. Interfaces 1–2: city and
    /// month selects under various labels.
    fn dataset() -> Dataset {
        let mk = |id: usize, attrs: Vec<Attribute>| Interface {
            id,
            domain: "airfare".into(),
            site: format!("site{id}"),
            attributes: attrs,
        };
        Dataset {
            domain: "airfare".into(),
            interfaces: vec![
                mk(
                    0,
                    vec![
                        attr("from", "From city", "from_city", &[]),
                        attr(
                            "dep",
                            "Departure date",
                            "depart_date",
                            &["Jan", "Feb", "Mar", "Apr"],
                        ),
                    ],
                ),
                mk(
                    1,
                    vec![
                        attr(
                            "from",
                            "Departure city",
                            "from_city",
                            &["Boston", "Chicago", "Denver"],
                        ),
                        attr("dep", "Departure on", "depart_date", &["May", "Jun", "Jul"]),
                    ],
                ),
                mk(
                    2,
                    vec![attr(
                        "city",
                        "From city",
                        "from_city",
                        &["Miami", "Austin", "Tampa"],
                    )],
                ),
            ],
        }
    }

    #[test]
    fn case1_excludes_own_interface_and_sibling_domains() {
        let ds = dataset();
        let cfg = WebIQConfig::default();
        // X1 = the text "From city" attr on interface 0; its sibling has a
        // month domain, so month-valued candidates are filtered out.
        let candidates = case1_candidates(&ds, (0, 0), "From city", &cfg);
        assert!(candidates.contains(&(1, 0)), "{candidates:?}");
        assert!(candidates.contains(&(2, 0)), "{candidates:?}");
        assert!(
            !candidates.contains(&(1, 1)),
            "month attr clashes with the month sibling: {candidates:?}"
        );
        assert!(
            !candidates.iter().any(|r| r.0 == 0),
            "own interface excluded"
        );
    }

    #[test]
    fn case1_orders_by_label_similarity() {
        let ds = dataset();
        let cfg = WebIQConfig::default();
        let candidates = case1_candidates(&ds, (0, 0), "From city", &cfg);
        // the identically labelled (2,0) must rank above (1,0)
        let pos = |r: AttrRef| candidates.iter().position(|c| *c == r).expect("present");
        assert!(pos((2, 0)) < pos((1, 0)), "{candidates:?}");
    }

    #[test]
    fn case1_without_prefilter_returns_everything_foreign() {
        let ds = dataset();
        let cfg = WebIQConfig {
            borrow_prefilter: false,
            ..WebIQConfig::default()
        };
        let candidates = case1_candidates(&ds, (0, 0), "From city", &cfg);
        assert_eq!(candidates.len(), 3); // (1,0), (1,1), (2,0)
    }

    #[test]
    fn case2_requires_similar_value_pair() {
        let ds = dataset();
        let cfg = WebIQConfig::default();
        // X1 = the month select on interface 0 (Jan..Apr); candidate months
        // on interface 1 are May..Jul — no similar value → not a candidate.
        let own: Vec<String> = ["Jan", "Feb", "Mar", "Apr"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let candidates = case2_candidates(&ds, (0, 1), &own, &cfg);
        assert!(candidates.is_empty(), "{candidates:?}");

        // sharing one value (case-insensitively) admits the candidate
        let own: Vec<String> = ["jun", "Dec"].iter().map(|s| (*s).to_string()).collect();
        let candidates = case2_candidates(&ds, (0, 1), &own, &cfg);
        assert!(candidates.contains(&(1, 1)), "{candidates:?}");
    }

    #[test]
    fn case2_spelling_variants_count_as_similar() {
        let ds = dataset();
        let cfg = WebIQConfig::default();
        let own: Vec<String> = vec!["Bostonn".to_string()]; // 1 edit from Boston
        let candidates = case2_candidates(&ds, (0, 1), &own, &cfg);
        assert!(candidates.contains(&(1, 0)), "{candidates:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_data::records::{build_deep_source, RecordOptions};
    use webiq_data::{corpus, generate_domain, kb, GenOptions};
    use webiq_web::{gen, GenConfig};

    fn setup(domain: &str) -> (Dataset, &'static DomainDef, SearchEngine, Vec<DeepSource>) {
        let def = kb::domain(domain).expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let engine = SearchEngine::new(gen::generate(
            &corpus::concept_specs(def),
            &GenConfig::default(),
        ))
        .expect("engine");
        let sources = ds
            .interfaces
            .iter()
            .map(|i| build_deep_source(def, i, &RecordOptions::default()))
            .collect();
        (ds, def, engine, sources)
    }

    #[test]
    fn acquisition_gathers_instances_for_no_inst_attrs() {
        let (ds, def, engine, sources) = setup("book");
        let cfg = WebIQConfig::default();
        let acq =
            acquire(&ds, def, &engine, &sources, Components::SURFACE_DEEP, &cfg).expect("acquire");
        assert!(acq.report.no_inst_attrs > 0);
        assert!(
            acq.report.surface_success > 0,
            "no Surface successes: {:?}",
            acq.report
        );
        assert!(acq.report.surface_deep_success >= acq.report.surface_success);
        assert!(acq.report.surface_cost.engine_queries > 0);
    }

    #[test]
    fn deep_validation_improves_on_surface_alone() {
        let (ds, def, engine, sources) = setup("airfare");
        let cfg = WebIQConfig::default();
        let surface_only =
            acquire(&ds, def, &engine, &sources, Components::SURFACE, &cfg).expect("acquire");
        let with_deep =
            acquire(&ds, def, &engine, &sources, Components::SURFACE_DEEP, &cfg).expect("acquire");
        assert!(
            with_deep.report.surface_deep_success_rate()
                >= surface_only.report.surface_success_rate(),
            "deep must not hurt: {:?} vs {:?}",
            with_deep.report.surface_deep_success_rate(),
            surface_only.report.surface_success_rate()
        );
        assert!(with_deep.report.attr_deep_cost.probes > 0);
    }

    #[test]
    fn none_components_acquire_nothing() {
        let (ds, def, engine, sources) = setup("auto");
        let cfg = WebIQConfig::default();
        let acq = acquire(&ds, def, &engine, &sources, Components::NONE, &cfg).expect("acquire");
        assert!(acq.acquired.is_empty());
        assert_eq!(acq.report.surface_success, 0);
    }

    #[test]
    fn attr_surface_enriches_predefined_attributes() {
        let (ds, def, engine, sources) = setup("airfare");
        let cfg = WebIQConfig::default();
        let acq = acquire(&ds, def, &engine, &sources, Components::ALL, &cfg).expect("acquire");
        assert!(
            acq.report.attr_surface_enriched > 0,
            "Attr-Surface enriched nothing: {:?}",
            acq.report
        );
    }

    #[test]
    fn acquired_values_do_not_duplicate_predefined_ones() {
        let (ds, def, engine, sources) = setup("airfare");
        let cfg = WebIQConfig::default();
        let acq = acquire(&ds, def, &engine, &sources, Components::ALL, &cfg).expect("acquire");
        for (r, acquired) in &acq.acquired {
            let a = ds.attribute(*r).expect("attr");
            for v in acquired {
                assert!(
                    !a.instances.iter().any(|p| p.eq_ignore_ascii_case(v)),
                    "{v} duplicated for {r:?}"
                );
            }
        }
    }

    #[test]
    fn success_rates_are_percentages() {
        let (ds, def, engine, sources) = setup("job");
        let cfg = WebIQConfig::default();
        let acq =
            acquire(&ds, def, &engine, &sources, Components::SURFACE_DEEP, &cfg).expect("acquire");
        let s = acq.report.surface_success_rate();
        let sd = acq.report.surface_deep_success_rate();
        assert!((0.0..=100.0).contains(&s));
        assert!((0.0..=100.0).contains(&sd));
        assert!(sd >= s);
    }
}
