//! Configuration for the WebIQ pipeline.

use std::sync::Arc;

use webiq_fault::FaultConfig;
use webiq_obs::LiveRegistry;
use webiq_stats::DiscordancyTest;
use webiq_trace::Tracer;

/// Tunables for the Surface component and the validation machinery.
#[derive(Debug, Clone)]
pub struct WebIQConfig {
    /// Number of instances to acquire per attribute (`k` in §2 and §5;
    /// the paper deems acquisition successful at k = 10).
    pub k: usize,
    /// Snippets downloaded per extraction query (top-k results).
    pub snippets_per_query: usize,
    /// Number of domain keywords appended to extraction queries
    /// (the `+book` of `"authors such as" +book`).
    pub scope_keywords: usize,
    /// Number of sibling-attribute-label keywords appended to extraction
    /// queries (the `+title +isbn` of the paper's example). Each keyword is
    /// a strict AND filter, so this trades snippet volume for precision;
    /// 0 disables the narrowing.
    pub sibling_keywords: usize,
    /// Minimum average-PMI validation score for a candidate to survive Web
    /// validation (0 = any positive evidence).
    pub min_validation_score: f64,
    /// Run the statistical outlier-removal phase before Web validation
    /// (§2.2; switchable for the ablation study).
    pub outlier_phase: bool,
    /// Which discordancy test the outlier phase runs (the paper's 3σ rule
    /// or Grubbs' sample-size-aware test — both from its citation [4]).
    pub discordancy: DiscordancyTest,
    /// Use PMI for validation scores; `false` falls back to raw joint hit
    /// counts (ablation: popularity bias).
    pub use_pmi: bool,
    /// Label-similarity floor when selecting borrow candidates for an
    /// instance-less attribute (§5 case 1).
    pub borrow_label_sim: f64,
    /// Domain-similarity ceiling against sibling attributes when selecting
    /// borrow candidates (§5 case 1: the candidate's domain must be very
    /// different from every other domain on X₁'s interface).
    pub borrow_sibling_dom_sim: f64,
    /// Maximum probes sent to a Deep-Web source per borrowed attribute.
    pub probe_limit: usize,
    /// Success ratio above which all of B's instances are accepted (§4
    /// uses one third).
    pub probe_accept_ratio: f64,
    /// Apply the §5 borrow-candidate pre-filters (ablation switch;
    /// `false` borrows from every attribute with instances).
    pub borrow_prefilter: bool,
    /// Estimate classifier thresholds by information gain (§3.2);
    /// `false` uses the midpoint of the observed score range (ablation).
    pub info_gain_thresholds: bool,
    /// Worker threads for parallel acquisition. `None` resolves from the
    /// `WEBIQ_THREADS` environment variable, then from the machine's
    /// available parallelism. Any thread count produces byte-identical
    /// acquisition output (see DESIGN.md).
    pub threads: Option<usize>,
    /// Trace collector for the run. Disabled by default — recording and
    /// event emission then cost nothing — and cheap to clone (an `Arc`).
    /// With an enabled tracer, acquisition emits one deterministic span
    /// stream per run (byte-identical across worker counts).
    pub tracer: Tracer,
    /// Live metrics registry for `/metrics` exposition. `None` (the
    /// default) publishes nothing. Like the tracer, the registry is fed
    /// from the deterministic merge loop only, so a post-run scrape is
    /// byte-identical at any worker count.
    pub obs: Option<Arc<LiveRegistry>>,
    /// Fault-injection and resilience knobs (seeded fault plan, retry
    /// policy, circuit breakers, daily quota). Fully disabled by default;
    /// the wrappers then never engage and the run is byte-identical to a
    /// fault-free build. See also the `WEBIQ_FAULT_SEED` and
    /// `WEBIQ_FAULT_RATE` environment variables
    /// ([`WebIQConfig::resolved_fault`]).
    pub fault: FaultConfig,
    /// Persistent knowledge store (crash-safe append log + snapshot;
    /// see `webiq-store`). `None` — the default — persists nothing.
    /// With a store, acquisition first checks for a completed run with
    /// an identical input fingerprint and warm-starts from it
    /// (byte-identical instances and report, near-zero engine traffic);
    /// a cold run writes its instances, probe verdicts, and trained
    /// Bayes models through the store's fsync'd log as it merges items.
    pub store: Option<Arc<webiq_store::Store>>,
}

impl WebIQConfig {
    /// The acquisition worker count: the explicit `threads` override if
    /// set, else `WEBIQ_THREADS`, else available parallelism (at least 1).
    pub fn resolved_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Some(n) = std::env::var("WEBIQ_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }

    /// The fault configuration the run actually uses: the explicit
    /// `fault` field, with the `WEBIQ_FAULT_SEED` and `WEBIQ_FAULT_RATE`
    /// environment variables supplying the seed and transient rate *only
    /// when the corresponding field is still at its default* — the same
    /// fallback semantics as `WEBIQ_THREADS`, so programmatic settings
    /// always win over ambient ones.
    pub fn resolved_fault(&self) -> FaultConfig {
        let mut fault = self.fault.clone();
        let default = FaultConfig::default();
        if fault.seed == default.seed {
            if let Some(seed) = std::env::var("WEBIQ_FAULT_SEED")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
            {
                fault.seed = seed;
            }
        }
        if fault.transient_rate == default.transient_rate {
            if let Some(rate) = std::env::var("WEBIQ_FAULT_RATE")
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
            {
                fault.transient_rate = rate.clamp(0.0, 1.0);
            }
        }
        fault
    }
}

impl Default for WebIQConfig {
    fn default() -> Self {
        WebIQConfig {
            k: 10,
            snippets_per_query: 10,
            scope_keywords: 1,
            sibling_keywords: 0,
            min_validation_score: 0.0,
            outlier_phase: true,
            discordancy: DiscordancyTest::ThreeSigma,
            use_pmi: true,
            borrow_label_sim: 0.25,
            borrow_sibling_dom_sim: 0.3,
            probe_limit: 6,
            probe_accept_ratio: 1.0 / 3.0,
            borrow_prefilter: true,
            info_gain_thresholds: true,
            threads: None,
            tracer: Tracer::disabled(),
            obs: None,
            fault: FaultConfig::default(),
            store: None,
        }
    }
}

/// Which WebIQ components run during acquisition — Figure 7's axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Components {
    /// Discover instances from the Surface Web (§2).
    pub surface: bool,
    /// Borrow + validate via the Deep Web (§4).
    pub attr_deep: bool,
    /// Borrow + validate via the Surface Web (§3).
    pub attr_surface: bool,
}

impl Components {
    /// Baseline: no acquisition at all.
    pub const NONE: Components = Components {
        surface: false,
        attr_deep: false,
        attr_surface: false,
    };
    /// Surface only.
    pub const SURFACE: Components = Components {
        surface: true,
        attr_deep: false,
        attr_surface: false,
    };
    /// Surface + Attr-Deep.
    pub const SURFACE_DEEP: Components = Components {
        surface: true,
        attr_deep: true,
        attr_surface: false,
    };
    /// All three components (full WebIQ).
    pub const ALL: Components = Components {
        surface: true,
        attr_deep: true,
        attr_surface: true,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = WebIQConfig::default();
        assert_eq!(c.k, 10);
        assert!((c.probe_accept_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert!(c.outlier_phase);
        assert!(c.use_pmi);
    }

    #[test]
    fn threads_resolution() {
        // explicit override wins and is floored at 1
        assert_eq!(
            WebIQConfig {
                threads: Some(4),
                ..WebIQConfig::default()
            }
            .resolved_threads(),
            4
        );
        assert_eq!(
            WebIQConfig {
                threads: Some(0),
                ..WebIQConfig::default()
            }
            .resolved_threads(),
            1
        );
        // unset: env var or machine parallelism, but never 0
        assert!(WebIQConfig::default().resolved_threads() >= 1);
    }

    #[test]
    fn fault_machinery_is_off_by_default() {
        let c = WebIQConfig::default();
        assert!(!c.fault.enabled());
        // explicit settings always survive resolution
        let chaos = WebIQConfig {
            fault: FaultConfig::chaos(42, 0.2),
            ..WebIQConfig::default()
        };
        let resolved = chaos.resolved_fault();
        assert_eq!(resolved.seed, 42);
        assert!((resolved.transient_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn component_presets() {
        let enabled = |c: Components| [c.surface, c.attr_deep, c.attr_surface];
        assert_eq!(enabled(Components::NONE), [false, false, false]);
        assert_eq!(enabled(Components::SURFACE), [true, false, false]);
        assert_eq!(enabled(Components::SURFACE_DEEP), [true, true, false]);
        assert_eq!(enabled(Components::ALL), [true, true, true]);
    }
}
