//! Property-based tests for the WebIQ core: totality on arbitrary labels,
//! invariants of the extraction/verification pipeline, and probing-rule
//! arithmetic.

use proptest::prelude::*;
use webiq_core::{extract, patterns, surface, verify, DomainInfo, WebIQConfig};
use webiq_web::{Corpus, SearchEngine};

fn small_engine() -> SearchEngine {
    SearchEngine::new(Corpus::from_texts([
        "Popular departure cities such as Boston, Chicago, and Denver are listed. travel",
        "airlines such as Delta and United fly daily. travel",
        "The author of the book is Mark Twain.",
        "random noise page about gardening",
    ]))
}

proptest! {
    /// Label analysis and query formulation never panic on arbitrary
    /// label-ish text, and extraction stays within its query budget.
    #[test]
    fn extraction_total_on_arbitrary_labels(label in "[a-zA-Z0-9 :*/-]{0,40}") {
        let engine = small_engine();
        let info = DomainInfo { object: "thing".into(), domain_terms: vec!["travel".into()], sibling_terms: Vec::new() };
        let cfg = WebIQConfig::default();
        let outcome = extract::extract_candidates(&engine, &label, &info, &cfg);
        // 8 patterns per noun phrase; conjunction labels have at most a
        // handful of NPs
        prop_assert!(outcome.queries <= 8 * 8);
        for c in &outcome.candidates {
            prop_assert!(!c.text.trim().is_empty());
            prop_assert!(c.count >= 1);
        }
    }

    /// The Surface component returns at most k instances, each scored
    /// strictly above the configured floor, sorted descending.
    #[test]
    fn surface_respects_k_and_ordering(k in 1usize..15) {
        let engine = small_engine();
        let info = DomainInfo { object: "flight".into(), domain_terms: vec!["travel".into()], sibling_terms: Vec::new() };
        let cfg = WebIQConfig { k, ..WebIQConfig::default() };
        let result = surface::discover(&engine, "Departure city", &info, &cfg);
        prop_assert!(result.instances.len() <= k);
        for w in result.instances.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for inst in &result.instances {
            prop_assert!(inst.score > cfg.min_validation_score);
        }
    }

    /// Validation scores are finite and non-negative for arbitrary
    /// phrase/candidate combinations, with and without PMI.
    #[test]
    fn validation_scores_finite(
        phrase in "[a-z ]{1,20}",
        candidate in "[a-zA-Z ]{1,20}",
        use_pmi in any::<bool>(),
    ) {
        let engine = small_engine();
        let s = verify::validation_score(&engine, &phrase, &candidate, use_pmi);
        prop_assert!(s.is_finite());
        prop_assert!(s >= 0.0);
    }

    /// verify_candidates partitions its input: survivors + outliers +
    /// validation-removed = input size.
    #[test]
    fn verification_accounts_for_every_candidate(
        candidates in proptest::collection::vec("[a-zA-Z]{2,12}", 0..25),
    ) {
        let engine = small_engine();
        let cfg = WebIQConfig { k: usize::MAX, ..WebIQConfig::default() };
        let phrases = vec!["city".to_string()];
        let unique: std::collections::BTreeSet<String> =
            candidates.iter().map(|c| c.to_lowercase()).collect();
        prop_assume!(unique.len() == candidates.len());
        let out = verify::verify_candidates(&engine, &phrases, &candidates, &cfg);
        prop_assert_eq!(
            out.instances.len() + out.outliers_removed + out.validation_removed,
            candidates.len()
        );
    }

    /// Extraction patterns always materialise all eight Fig.-4 patterns
    /// with non-empty cue phrases for any noun-phrase label.
    #[test]
    fn patterns_materialize_for_noun_labels(idx in 0usize..6) {
        let labels = ["author", "city", "make", "publisher", "salary", "airline"];
        let np = extract::primary_noun_phrase(labels[idx]).expect("nouns");
        let pats = patterns::extraction_patterns(&np, "object");
        prop_assert_eq!(pats.len(), 8);
        for p in &pats {
            prop_assert!(!p.cue.trim().is_empty());
            prop_assert_eq!(p.cue.to_lowercase(), p.cue.clone());
        }
    }

    /// Snippet completion extraction never panics on arbitrary snippets.
    #[test]
    fn completions_total(snippet in ".{0,200}") {
        let np = extract::primary_noun_phrase("city").expect("np");
        for p in patterns::extraction_patterns(&np, "flight") {
            let _ = extract::completions(&snippet, &p);
        }
    }
}
