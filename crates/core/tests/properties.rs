//! Property-based tests for the WebIQ core: totality on arbitrary labels,
//! invariants of the extraction/verification pipeline, and probing-rule
//! arithmetic.

use webiq_core::{extract, patterns, surface, verify, DomainInfo, WebIQConfig};
use webiq_rng::prop;
use webiq_web::{Corpus, SearchEngine};

fn small_engine() -> SearchEngine {
    SearchEngine::new(Corpus::from_texts([
        "Popular departure cities such as Boston, Chicago, and Denver are listed. travel",
        "airlines such as Delta and United fly daily. travel",
        "The author of the book is Mark Twain.",
        "random noise page about gardening",
    ]))
    .expect("engine")
}

/// Label analysis and query formulation never panic on arbitrary
/// label-ish text, and extraction stays within its query budget.
#[test]
fn extraction_total_on_arbitrary_labels() {
    prop::cases(prop::CASES, |rng| {
        let label = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 :*/-"),
            0,
            40,
        );
        let engine = small_engine();
        let info = DomainInfo {
            object: "thing".into(),
            domain_terms: vec!["travel".into()],
            sibling_terms: Vec::new(),
        };
        let cfg = WebIQConfig::default();
        let outcome = extract::extract_candidates(&engine, &label, &info, &cfg);
        // 8 patterns per noun phrase; conjunction labels have at most a
        // handful of NPs
        assert!(outcome.queries <= 8 * 8);
        for c in &outcome.candidates {
            assert!(!c.text.trim().is_empty());
            assert!(c.count >= 1);
        }
    });
}

/// The Surface component returns at most k instances, each scored
/// strictly above the configured floor, sorted descending.
#[test]
fn surface_respects_k_and_ordering() {
    prop::cases(prop::CASES, |rng| {
        let k = rng.gen_range(1usize..15);
        let engine = small_engine();
        let info = DomainInfo {
            object: "flight".into(),
            domain_terms: vec!["travel".into()],
            sibling_terms: Vec::new(),
        };
        let cfg = WebIQConfig {
            k,
            ..WebIQConfig::default()
        };
        let result = surface::discover(&engine, "Departure city", &info, &cfg);
        assert!(result.instances.len() <= k);
        for w in result.instances.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for inst in &result.instances {
            assert!(inst.score > cfg.min_validation_score);
        }
    });
}

/// Validation scores are finite and non-negative for arbitrary
/// phrase/candidate combinations, with and without PMI.
#[test]
fn validation_scores_finite() {
    prop::cases(prop::CASES, |rng| {
        let phrase = rng.gen_string(prop::lower_space(), 1, 20);
        let candidate = rng.gen_string(prop::alpha_space(), 1, 20);
        let use_pmi = rng.gen_bool(0.5);
        let engine = small_engine();
        let s = verify::validation_score(&engine, &phrase, &candidate, use_pmi);
        assert!(s.is_finite());
        assert!(s >= 0.0);
    });
}

/// verify_candidates partitions its input: survivors + outliers +
/// validation-removed = input size.
#[test]
fn verification_accounts_for_every_candidate() {
    prop::cases(prop::CASES, |rng| {
        let candidates = prop::string_vec(
            rng,
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"),
            0,
            24,
            2,
            12,
        );
        let unique: std::collections::BTreeSet<String> =
            candidates.iter().map(|c| c.to_lowercase()).collect();
        if unique.len() != candidates.len() {
            return; // case-insensitive duplicates merge; skip
        }
        let engine = small_engine();
        let cfg = WebIQConfig {
            k: usize::MAX,
            ..WebIQConfig::default()
        };
        let phrases = vec!["city".to_string()];
        let out = verify::verify_candidates(&engine, &phrases, &candidates, &cfg);
        assert_eq!(
            out.instances.len() + out.outliers_removed + out.validation_removed,
            candidates.len()
        );
    });
}

/// Extraction patterns always materialise all eight Fig.-4 patterns
/// with non-empty cue phrases for any noun-phrase label.
#[test]
fn patterns_materialize_for_noun_labels() {
    prop::cases(prop::CASES, |rng| {
        let labels = ["author", "city", "make", "publisher", "salary", "airline"];
        let idx = rng.gen_range(0usize..labels.len());
        let np = extract::primary_noun_phrase(labels[idx]).expect("nouns");
        let pats = patterns::extraction_patterns(&np, "object");
        assert_eq!(pats.len(), 8);
        for p in &pats {
            assert!(!p.cue.trim().is_empty());
            assert_eq!(p.cue.to_lowercase(), p.cue);
        }
    });
}

/// Snippet completion extraction never panics on arbitrary snippets.
#[test]
fn completions_total() {
    prop::cases(prop::CASES, |rng| {
        let snippet = rng.gen_string(prop::any_char(), 0, 200);
        let np = extract::primary_noun_phrase("city").expect("np");
        for p in patterns::extraction_patterns(&np, "flight") {
            let _ = extract::completions(&snippet, &p);
        }
    });
}
