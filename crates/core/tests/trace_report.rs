//! `AcquisitionReport` is *derived from* the trace counters, so the
//! report and the trace aggregate can never disagree. These tests pin
//! that contract: the report equals `AcquisitionReport::from_metrics`
//! over the tracer's merged totals, and the `webiq-report` funnel built
//! from the emitted event stream carries the same numbers.

use webiq_core::{acquire, AcquisitionReport, Components, WebIQConfig};
use webiq_data::records::{build_deep_source, RecordOptions};
use webiq_data::{corpus, generate_domain, kb, GenOptions};
use webiq_trace::event::Event;
use webiq_trace::{report, Gauge, Tracer};
use webiq_web::{gen, GenConfig, SearchEngine};

/// Acquisition over one seeded synthetic domain with a memory tracer.
fn run(domain: &str) -> (webiq_core::Acquisition, Tracer, Vec<Event>) {
    let def = kb::domain(domain).expect("domain");
    let ds = generate_domain(def, &GenOptions::default());
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let sources: Vec<_> = ds
        .interfaces
        .iter()
        .map(|i| build_deep_source(def, i, &RecordOptions::default()))
        .collect();
    let (tracer, handle) = Tracer::memory();
    let cfg = WebIQConfig {
        tracer: tracer.clone(),
        ..WebIQConfig::default()
    };
    let acq =
        acquire::acquire(&ds, def, &engine, &sources, Components::ALL, &cfg).expect("acquisition");
    (acq, tracer, handle.events())
}

/// The report's deterministic fields with the wall-clock secs zeroed.
fn zero_secs(mut r: AcquisitionReport) -> AcquisitionReport {
    r.surface_cost.secs = 0.0;
    r.attr_surface_cost.secs = 0.0;
    r.attr_deep_cost.secs = 0.0;
    r
}

#[test]
fn report_equals_trace_aggregate() {
    let (acq, tracer, events) = run("book");
    let totals = tracer.totals();

    // The report is the counters' aggregate by construction.
    assert_eq!(
        zero_secs(acq.report.clone()),
        AcquisitionReport::from_metrics(&totals.counters)
    );

    // And the event stream carries the same counters: summing the close
    // deltas of the root spans reproduces the totals.
    let from_events = report::aggregate(&events);
    assert_eq!(
        zero_secs(acq.report),
        AcquisitionReport::from_metrics(&from_events)
    );
}

#[test]
fn funnel_totals_match_report() {
    let (acq, tracer, _) = run("airfare");
    let f = report::funnel(&tracer.totals().counters);
    assert_eq!(f.no_instance, acq.report.no_inst_attrs as u64);
    assert_eq!(f.surface_success, acq.report.surface_success as u64);
    assert_eq!(
        f.surface_deep_success,
        acq.report.surface_deep_success as u64
    );
    assert_eq!(
        f.attr_surface_enriched,
        acq.report.attr_surface_enriched as u64
    );
    assert_eq!(f.surface_queries, acq.report.surface_cost.engine_queries);
    assert_eq!(
        f.attr_surface_queries,
        acq.report.attr_surface_cost.engine_queries
    );
    assert_eq!(f.attr_deep_probes, acq.report.attr_deep_cost.probes);
    // The funnel narrows monotonically where the pipeline filters.
    assert!(f.attrs_total >= f.no_instance + f.predefined);
    assert!(f.candidates >= f.verified, "{f:?}");
    assert!(f.probed > 0, "{f:?}");
}

#[test]
fn disabled_tracer_still_yields_a_correct_report() {
    // Counters are always on (thread-local), so the derived report must
    // be identical whether the tracer records events or not.
    let traced = zero_secs(run("book").0.report);

    let def = kb::domain("book").expect("domain");
    let ds = generate_domain(def, &GenOptions::default());
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let sources: Vec<_> = ds
        .interfaces
        .iter()
        .map(|i| build_deep_source(def, i, &RecordOptions::default()))
        .collect();
    let cfg = WebIQConfig::default();
    let acq =
        acquire::acquire(&ds, def, &engine, &sources, Components::ALL, &cfg).expect("acquisition");
    assert_eq!(zero_secs(acq.report), traced);
}

#[test]
fn gauges_record_run_shape() {
    let (_, tracer, _) = run("book");
    let g = tracer.totals().gauges;
    assert!(g.get(Gauge::Interfaces) > 0);
    assert!(g.get(Gauge::Attributes) >= g.get(Gauge::Interfaces));
    assert!(g.get(Gauge::CorpusDocs) > 0);
}
