//! Warm-start equivalence: a second acquisition run over identical
//! inputs replays from the persistent store with byte-identical results
//! and near-zero engine traffic, at any worker count.

use std::sync::Arc;

use webiq_core::acquire::acquire;
use webiq_core::{Components, WebIQConfig};
use webiq_data::interface::Dataset;
use webiq_data::records::{build_deep_source, RecordOptions};
use webiq_data::{corpus, generate_domain, kb, DomainDef, GenOptions};
use webiq_deep::DeepSource;
use webiq_match::{attributes_of, match_attributes, MatchConfig};
use webiq_store::Store;
use webiq_trace::Counter;
use webiq_web::{gen, GenConfig, SearchEngine};

fn setup(domain: &str) -> (Dataset, &'static DomainDef, SearchEngine, Vec<DeepSource>) {
    let def = kb::domain(domain).expect("domain");
    let ds = generate_domain(def, &GenOptions::default());
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let sources = ds
        .interfaces
        .iter()
        .map(|i| build_deep_source(def, i, &RecordOptions::default()))
        .collect();
    (ds, def, engine, sources)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("webiq-store-warm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cfg_with(store: Option<Arc<Store>>, threads: usize) -> WebIQConfig {
    WebIQConfig {
        threads: Some(threads),
        store,
        ..WebIQConfig::default()
    }
}

/// F-1 of the matcher over acquisition-enriched attributes.
fn f1_of(ds: &Dataset, acq: &webiq_core::Acquisition) -> f64 {
    let mut attrs = attributes_of(ds);
    for a in &mut attrs {
        a.values.extend(acq.instances_for(a.r).iter().cloned());
    }
    match_attributes(&attrs, &MatchConfig::default())
        .evaluate(ds)
        .f1
}

/// A report with its wall-clock `secs` zeroed — every other field is
/// counter-derived and deterministic; the secs never repeat.
fn no_secs(r: &webiq_core::AcquisitionReport) -> webiq_core::AcquisitionReport {
    let mut r = r.clone();
    r.surface_cost.secs = 0.0;
    r.attr_surface_cost.secs = 0.0;
    r.attr_deep_cost.secs = 0.0;
    r
}

fn engine_query_count() -> u64 {
    let m = webiq_trace::snapshot();
    m.get(Counter::EngineSearchIssued) + m.get(Counter::EngineHitIssued)
}

#[test]
fn warm_start_is_byte_identical_and_engine_free_across_thread_counts() {
    let (ds, def, engine, sources) = setup("airfare");
    let dir = tmp_dir("roundtrip");

    // Baseline without any store: the persistence plumbing must not
    // perturb a store-less run.
    let plain = acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::ALL,
        &cfg_with(None, 2),
    )
    .expect("plain");

    // Cold run: acquires from the (simulated) Web and persists.
    let store = Arc::new(Store::open(&dir).expect("open"));
    let cold_cfg = cfg_with(Some(store), 2);
    let cold = acquire(&ds, def, &engine, &sources, Components::ALL, &cold_cfg).expect("cold");
    assert_eq!(cold.acquired, plain.acquired, "store perturbed the run");
    assert_eq!(no_secs(&cold.report), no_secs(&plain.report));
    assert!(cold.report.surface_cost.engine_queries > 0);
    let cold_f1 = f1_of(&ds, &cold);
    drop(cold_cfg);

    // Warm runs: a fresh store handle (recovery path included) at every
    // thread count must replay the identical result with zero engine
    // traffic.
    for threads in [1usize, 2, 4, 8] {
        let store = Arc::new(Store::open(&dir).expect("reopen"));
        let warm_cfg = cfg_with(Some(store), threads);
        let before = engine_query_count();
        let warm = acquire(&ds, def, &engine, &sources, Components::ALL, &warm_cfg).expect("warm");
        let issued = engine_query_count() - before;
        assert_eq!(issued, 0, "{threads} threads: warm run queried the engine");
        assert_eq!(warm.acquired, cold.acquired, "{threads} threads");
        assert_eq!(warm.degraded, cold.degraded, "{threads} threads");
        // The report is rebuilt from the stored counter totals — equal
        // to the cold report except the wall-clock secs (no time was
        // spent, so they are zero).
        assert_eq!(warm.report, no_secs(&cold.report), "{threads} threads");
        let warm_f1 = f1_of(&ds, &warm);
        assert_eq!(
            warm_f1.to_bits(),
            cold_f1.to_bits(),
            "{threads} threads: F-1 drifted (cold {cold_f1}, warm {warm_f1})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_inputs_miss_and_reacquire_cold() {
    let (ds, def, engine, sources) = setup("book");
    let dir = tmp_dir("miss");
    let store = Arc::new(Store::open(&dir).expect("open"));
    let cold = acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::SURFACE_DEEP,
        &cfg_with(Some(store), 2),
    )
    .expect("cold");

    // A different component selection fingerprints differently: the
    // stored run must not be served. Single-threaded so the re-issued
    // engine queries land on this thread's (thread-local) counters.
    let store = Arc::new(Store::open(&dir).expect("reopen"));
    let before = engine_query_count();
    let other = acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::SURFACE,
        &cfg_with(Some(store), 1),
    )
    .expect("other");
    assert!(
        engine_query_count() > before,
        "changed components still warm-started"
    );
    assert!(other.report.attr_deep_cost.probes == 0);
    assert!(cold.report.attr_deep_cost.probes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_store_falls_back_to_cold_and_heals() {
    let (ds, def, engine, sources) = setup("auto");
    let dir = tmp_dir("torn");
    let store = Arc::new(Store::open(&dir).expect("open"));
    let cold = acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::SURFACE_DEEP,
        &cfg_with(Some(store), 2),
    )
    .expect("cold");

    // Tear the snapshot mid-file — a crash during a later copy, say.
    // Recovery truncates to a committed prefix; the run-complete marker
    // is the last record, so the prefix has no marker and the warm
    // lookup misses. The run re-acquires cold, byte-identically, and
    // re-persists.
    let snap_path = dir.join(webiq_store::SNAPSHOT_FILE);
    let snap = std::fs::read(&snap_path).expect("snapshot");
    // Pick a cut near 60% that lands strictly inside a frame, so the
    // recovery stats visibly show a truncation.
    let mut cut = snap.len() * 3 / 5;
    while webiq_store::scan(&snap[..cut]).clean() {
        cut += 1;
    }
    std::fs::write(&snap_path, &snap[..cut]).expect("tear");

    let store = Arc::new(Store::open(&dir).expect("recover"));
    assert!(store.recovery_stats().truncated_bytes > 0);
    let before = engine_query_count();
    let again = acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::SURFACE_DEEP,
        &cfg_with(Some(store), 1),
    )
    .expect("reacquire");
    assert!(engine_query_count() > before, "torn store warm-started");
    assert_eq!(again.acquired, cold.acquired);
    assert_eq!(no_secs(&again.report), no_secs(&cold.report));

    // The re-run healed the store: the next run warm-starts again.
    let store = Arc::new(Store::open(&dir).expect("reopen"));
    let before = engine_query_count();
    let warm = acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::SURFACE_DEEP,
        &cfg_with(Some(store), 2),
    )
    .expect("warm");
    assert_eq!(engine_query_count(), before, "healed store did not serve");
    assert_eq!(warm.acquired, cold.acquired);
    let _ = std::fs::remove_dir_all(&dir);
}
