//! Diagnostic: end-to-end Figure-6 shape (run with --nocapture).
use webiq_core::{acquire, Components, WebIQConfig};
use webiq_data::records::{build_deep_source, RecordOptions};
use webiq_data::{corpus, generate_domain, kb, GenOptions};
use webiq_match::{attributes_of, match_attributes, MatchConfig};
use webiq_web::{gen, GenConfig, SearchEngine};

#[test]
#[ignore] // diagnostic; run explicitly
fn fig6_shape() {
    for def in kb::all_domains() {
        let ds = generate_domain(def, &GenOptions::default());
        let engine = SearchEngine::new(gen::generate(
            &corpus::concept_specs(def),
            &GenConfig::default(),
        ))
        .expect("engine");
        let sources: Vec<_> = ds
            .interfaces
            .iter()
            .map(|i| build_deep_source(def, i, &RecordOptions::default()))
            .collect();

        let base = match_attributes(&attributes_of(&ds), &MatchConfig::default()).evaluate(&ds);

        let acq = acquire::acquire(
            &ds,
            def,
            &engine,
            &sources,
            Components::ALL,
            &WebIQConfig::default(),
        )
        .expect("acquisition");
        let mut attrs = attributes_of(&ds);
        for a in &mut attrs {
            a.values.extend(acq.instances_for(a.r).iter().cloned());
        }
        let webiq = match_attributes(&attrs, &MatchConfig::default()).evaluate(&ds);
        let t03 = match_attributes(&attrs, &MatchConfig::with_threshold(0.03)).evaluate(&ds);
        let t05 = match_attributes(&attrs, &MatchConfig::with_threshold(0.05)).evaluate(&ds);
        let t08 = match_attributes(&attrs, &MatchConfig::with_threshold(0.08)).evaluate(&ds);
        let t10 = match_attributes(&attrs, &MatchConfig::with_threshold(0.1)).evaluate(&ds);
        println!(
            "{:10} base={:.3} webiq={:.3} t03={:.3} t05={:.3} t08={:.3} t10={:.3} | P {:.3}->{:.3} surf={:.1}% sd={:.1}%",
            def.key, base.f1, webiq.f1, t03.f1, t05.f1, t08.f1, t10.f1,
            webiq.precision, t05.precision,
            acq.report.surface_success_rate(), acq.report.surface_deep_success_rate(),
        );
    }
}
