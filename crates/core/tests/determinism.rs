//! The parallel acquisition executor must produce output byte-identical
//! to the sequential path: same acquired-instance maps and same report
//! counters for any worker count. Only the wall-clock `secs` fields are
//! allowed to differ — they are zeroed before comparison here.

use webiq_core::{acquire, Acquisition, Components, WebIQConfig};
use webiq_data::records::{build_deep_source, RecordOptions};
use webiq_data::{corpus, generate_domain, kb, GenOptions};
use webiq_web::{gen, GenConfig, SearchEngine};

/// Run full acquisition over one seeded synthetic domain with the given
/// worker count, on freshly built (deterministic) engine and sources.
fn run(domain_idx: usize, threads: usize) -> Acquisition {
    let def = kb::all_domains()[domain_idx];
    let ds = generate_domain(def, &GenOptions::default());
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let sources: Vec<_> = ds
        .interfaces
        .iter()
        .map(|i| build_deep_source(def, i, &RecordOptions::default()))
        .collect();
    let cfg = WebIQConfig {
        threads: Some(threads),
        ..WebIQConfig::default()
    };
    acquire::acquire(&ds, def, &engine, &sources, Components::ALL, &cfg).expect("acquisition")
}

/// Strip the wall-clock fields, which legitimately vary run to run.
fn zero_secs(acq: &mut Acquisition) {
    acq.report.surface_cost.secs = 0.0;
    acq.report.attr_surface_cost.secs = 0.0;
    acq.report.attr_deep_cost.secs = 0.0;
}

#[test]
fn parallel_acquisition_matches_sequential() {
    for domain_idx in 0..2 {
        let mut seq = run(domain_idx, 1);
        zero_secs(&mut seq);
        for threads in [4, 8] {
            let mut par = run(domain_idx, threads);
            zero_secs(&mut par);
            assert_eq!(
                seq.acquired, par.acquired,
                "acquired maps differ at {threads} threads (domain {domain_idx})"
            );
            assert_eq!(
                seq.report, par.report,
                "reports differ at {threads} threads (domain {domain_idx})"
            );
        }
    }
}

#[test]
fn sequential_rerun_is_reproducible() {
    // Sanity for the test above: the whole pipeline (dataset generation,
    // corpus generation, probing) is deterministic at a fixed thread count.
    let mut a = run(0, 1);
    let mut b = run(0, 1);
    zero_secs(&mut a);
    zero_secs(&mut b);
    assert_eq!(a.acquired, b.acquired);
    assert_eq!(a.report, b.report);
}
