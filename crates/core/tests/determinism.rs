//! The parallel acquisition executor must produce output byte-identical
//! to the sequential path: same acquired-instance maps, same report
//! counters, and — with an enabled tracer — the same JSONL event stream,
//! for any worker count. Only the wall-clock `secs` fields are allowed
//! to differ — they are zeroed before comparison here.

use std::sync::Arc;

use webiq_core::{acquire, Acquisition, Components, WebIQConfig};
use webiq_data::records::{build_deep_source, RecordOptions};
use webiq_data::{corpus, generate_domain, kb, GenOptions};
use webiq_obs::LiveRegistry;
use webiq_trace::{SharedBuf, Tracer};
use webiq_web::{gen, GenConfig, SearchEngine};

/// Run full acquisition over one seeded synthetic domain with the given
/// worker count and tracer, on freshly built (deterministic) engine and
/// sources.
fn run_with(domain_idx: usize, threads: usize, tracer: Tracer) -> Acquisition {
    run_cfg(
        domain_idx,
        WebIQConfig {
            threads: Some(threads),
            tracer,
            ..WebIQConfig::default()
        },
    )
}

fn run_cfg(domain_idx: usize, cfg: WebIQConfig) -> Acquisition {
    let def = kb::all_domains()[domain_idx];
    let ds = generate_domain(def, &GenOptions::default());
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let sources: Vec<_> = ds
        .interfaces
        .iter()
        .map(|i| build_deep_source(def, i, &RecordOptions::default()))
        .collect();
    acquire::acquire(&ds, def, &engine, &sources, Components::ALL, &cfg).expect("acquisition")
}

fn run(domain_idx: usize, threads: usize) -> Acquisition {
    run_with(domain_idx, threads, Tracer::disabled())
}

/// Acquisition with a JSONL tracer; returns the emitted event stream.
fn run_traced(domain_idx: usize, threads: usize) -> (Acquisition, String) {
    let buf = SharedBuf::new();
    let tracer = Tracer::jsonl(Box::new(buf.clone()));
    let acq = run_with(domain_idx, threads, tracer.clone());
    tracer.flush();
    (acq, buf.contents_string())
}

/// Strip the wall-clock fields, which legitimately vary run to run.
fn zero_secs(acq: &mut Acquisition) {
    acq.report.surface_cost.secs = 0.0;
    acq.report.attr_surface_cost.secs = 0.0;
    acq.report.attr_deep_cost.secs = 0.0;
}

#[test]
fn parallel_acquisition_matches_sequential() {
    for domain_idx in 0..2 {
        let mut seq = run(domain_idx, 1);
        zero_secs(&mut seq);
        for threads in [4, 8] {
            let mut par = run(domain_idx, threads);
            zero_secs(&mut par);
            assert_eq!(
                seq.acquired, par.acquired,
                "acquired maps differ at {threads} threads (domain {domain_idx})"
            );
            assert_eq!(
                seq.report, par.report,
                "reports differ at {threads} threads (domain {domain_idx})"
            );
        }
    }
}

#[test]
fn trace_stream_is_byte_identical_across_worker_counts() {
    // The tentpole guarantee: the JSONL event stream — logical clock,
    // span ids, counter deltas, everything — is byte-identical whether
    // acquisition ran on one worker or four.
    let (seq_acq, seq_trace) = run_traced(0, 1);
    let (par_acq, par_trace) = run_traced(0, 4);
    assert!(!seq_trace.is_empty(), "tracer emitted nothing");
    assert_eq!(seq_trace, par_trace, "trace streams differ across workers");
    let mut a = seq_acq;
    let mut b = par_acq;
    zero_secs(&mut a);
    zero_secs(&mut b);
    assert_eq!(a.acquired, b.acquired);
    assert_eq!(a.report, b.report);
}

#[test]
fn trace_stream_rerun_is_byte_identical() {
    let (_, first) = run_traced(1, 2);
    let (_, second) = run_traced(1, 2);
    assert_eq!(first, second, "trace streams differ across reruns");
}

#[test]
fn profiled_trace_is_byte_identical_across_the_full_thread_sweep() {
    // The webiq-prof registry is always on — lock wrappers, cache
    // telemetry, worker accounting, and stage timers all record during
    // these runs. None of that may leak into the deterministic plane:
    // the JSONL stream must stay byte-identical across the whole
    // 1/2/4/8 sweep `experiments profile` performs.
    webiq_prof::reset();
    let (_, reference) = run_traced(0, 1);
    assert!(!reference.is_empty(), "tracer emitted nothing");
    let profiled = webiq_prof::snapshot();
    assert!(
        profiled.get(webiq_prof::ProfCounter::WorkerItems) > 0,
        "profiling was not active during the run"
    );
    assert!(
        profiled.stage_calls(webiq_prof::Stage::Extract) > 0,
        "stage timers were not active during the run"
    );
    for threads in [2, 4, 8] {
        let (_, trace) = run_traced(0, threads);
        assert_eq!(
            reference, trace,
            "profiled trace differs at {threads} threads"
        );
    }
}

/// The decision lines of a trace, verbatim.
fn decision_lines(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| l.starts_with("{\"ev\":\"decision\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn decision_stream_is_byte_identical_across_the_full_thread_sweep() {
    // Decision provenance rides the same merge-time logical clock as the
    // span events, so the decision JSONL sub-stream — subjects, verdicts,
    // every evidence term's float encoding — is byte-identical across
    // the 1/2/4/8 sweep and across reruns.
    let (_, reference) = run_traced(0, 1);
    let decisions = decision_lines(&reference);
    assert!(
        !decisions.is_empty(),
        "acquisition recorded no decisions — provenance instrumentation is dead"
    );
    assert!(
        decisions.contains("\"kind\":\"instance_validate\""),
        "no instance_validate decisions:\n{decisions}"
    );
    for threads in [2, 4, 8] {
        let (_, trace) = run_traced(0, threads);
        assert_eq!(
            decisions,
            decision_lines(&trace),
            "decision stream differs at {threads} threads"
        );
    }
    let (_, rerun) = run_traced(0, 1);
    assert_eq!(
        decisions,
        decision_lines(&rerun),
        "decision stream differs across reruns"
    );
}

/// Acquisition with a live metrics registry installed; returns its
/// Prometheus rendering after the run.
fn run_observed(domain_idx: usize, threads: usize) -> String {
    let reg = Arc::new(LiveRegistry::new());
    run_cfg(
        domain_idx,
        WebIQConfig {
            threads: Some(threads),
            obs: Some(Arc::clone(&reg)),
            ..WebIQConfig::default()
        },
    );
    reg.render()
}

#[test]
fn metrics_exposition_is_byte_identical_across_worker_counts() {
    // The registry is fed from the deterministic merge loop, not from
    // worker-local state, so a post-run `/metrics` scrape is the same
    // byte stream at any thread count — and across reruns.
    let seq = run_observed(0, 1);
    assert!(
        seq.contains("webiq_attrs_total_total"),
        "rendering is missing counters:\n{seq}"
    );
    for threads in [2, 4] {
        let par = run_observed(0, threads);
        assert_eq!(seq, par, "/metrics differs at {threads} threads");
    }
    assert_eq!(seq, run_observed(0, 1), "/metrics differs across reruns");
}

#[test]
fn sequential_rerun_is_reproducible() {
    // Sanity for the test above: the whole pipeline (dataset generation,
    // corpus generation, probing) is deterministic at a fixed thread count.
    let mut a = run(0, 1);
    let mut b = run(0, 1);
    zero_secs(&mut a);
    zero_secs(&mut b);
    assert_eq!(a.acquired, b.acquired);
    assert_eq!(a.report, b.report);
}
