//! Chaos suite: acquisition under injected faults (DESIGN.md §13).
//!
//! Pins the resilience guarantees end to end:
//!
//! - a fixed fault seed yields byte-identical trace streams and reports
//!   at any worker count, for transient rates up to 20%;
//! - a 10% transient-fault run completes the full domain, keeps the
//!   matching F-1 within a small margin of the clean run, and reports
//!   every degraded attribute;
//! - the circuit breaker walks closed → open → half-open → closed;
//! - a quota-exhausted run shows up as a trace-diff REGRESSION with the
//!   failing funnel stage named.

use webiq_core::{acquire, Acquisition, Components, WebIQConfig};
use webiq_data::records::{build_deep_source, RecordOptions};
use webiq_data::{corpus, generate_domain, kb, Dataset, GenOptions};
use webiq_fault::{BreakerState, CircuitBreaker, FaultConfig, FaultPlan, VirtualClock};
use webiq_match::{attributes_of, match_attributes, MatchConfig};
use webiq_obs::{diff_events, parse_jsonl, DiffThresholds};
use webiq_trace::report::aggregate_run;
use webiq_trace::{Counter, SharedBuf, Tracer};
use webiq_web::{gen, GenConfig, SearchEngine};

/// Full acquisition over one seeded synthetic domain with `threads`
/// workers and the given fault config threaded through both boundaries:
/// the sources run the attempt-aware plan and the retry layer runs the
/// same config. Returns the acquisition and the JSONL trace stream.
fn run_chaos(domain_idx: usize, threads: usize, fault: FaultConfig) -> (Acquisition, String) {
    let def = kb::all_domains()[domain_idx];
    let ds = generate_domain(def, &GenOptions::default());
    let (acq, trace) = run_on(&ds, domain_idx, threads, fault);
    (acq, trace)
}

fn run_on(
    ds: &Dataset,
    domain_idx: usize,
    threads: usize,
    fault: FaultConfig,
) -> (Acquisition, String) {
    let def = kb::all_domains()[domain_idx];
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let plan = fault.enabled().then(|| FaultPlan::from_config(&fault));
    let sources: Vec<_> = ds
        .interfaces
        .iter()
        .map(|i| {
            build_deep_source(
                def,
                i,
                &RecordOptions {
                    fault_plan: plan.clone(),
                    ..RecordOptions::default()
                },
            )
        })
        .collect();
    let buf = SharedBuf::new();
    let tracer = Tracer::jsonl(Box::new(buf.clone()));
    let cfg = WebIQConfig {
        threads: Some(threads),
        tracer: tracer.clone(),
        fault,
        ..WebIQConfig::default()
    };
    let acq =
        acquire::acquire(ds, def, &engine, &sources, Components::ALL, &cfg).expect("acquisition");
    tracer.flush();
    (acq, buf.contents_string())
}

/// Strip the wall-clock fields, which legitimately vary run to run.
fn zero_secs(acq: &mut Acquisition) {
    acq.report.surface_cost.secs = 0.0;
    acq.report.attr_surface_cost.secs = 0.0;
    acq.report.attr_deep_cost.secs = 0.0;
}

/// Matching F-1 over the dataset with the acquisition's instances
/// grafted onto the interfaces.
fn enriched_f1(ds: &Dataset, acq: &Acquisition) -> f64 {
    let mut attrs = attributes_of(ds);
    for a in &mut attrs {
        a.values.extend(acq.instances_for(a.r).iter().cloned());
    }
    match_attributes(&attrs, &MatchConfig::default())
        .evaluate(ds)
        .f1
}

#[test]
fn fault_runs_are_byte_identical_across_worker_counts() {
    for rate in [0.0, 0.05, 0.2] {
        let fault = FaultConfig::chaos(42, rate);
        let (seq_acq, seq_trace) = run_chaos(0, 1, fault.clone());
        assert!(!seq_trace.is_empty(), "tracer emitted nothing");
        let mut seq = seq_acq;
        zero_secs(&mut seq);
        for threads in [2, 4] {
            let (par_acq, par_trace) = run_chaos(0, threads, fault.clone());
            assert_eq!(
                seq_trace, par_trace,
                "trace streams differ at {threads} workers (rate {rate})"
            );
            let mut par = par_acq;
            zero_secs(&mut par);
            assert_eq!(seq.acquired, par.acquired, "rate {rate}");
            assert_eq!(seq.degraded, par.degraded, "rate {rate}");
            assert_eq!(seq.report, par.report, "rate {rate}");
        }
    }
}

#[test]
fn disabled_faults_leave_the_trace_stream_unchanged() {
    // FaultConfig::default() must be a true no-op: same bytes as a run
    // that predates the fault machinery (which the 0.0-rate chaos config
    // also exercises — `enabled()` is false for both).
    let (_, plain) = run_chaos(1, 2, FaultConfig::default());
    let (_, zero_rate) = run_chaos(1, 2, FaultConfig::chaos(99, 0.0));
    assert_eq!(plain, zero_rate, "disabled configs must be byte-identical");
}

#[test]
fn ten_pct_transient_run_completes_and_degrades_gracefully() {
    let def = kb::all_domains()[0];
    let ds = generate_domain(def, &GenOptions::default());
    let (clean, _) = run_on(&ds, 0, 1, FaultConfig::default());
    let (faulty, trace) = run_on(&ds, 0, 1, FaultConfig::chaos(7, 0.10));

    // The run completed the whole domain and the retry layer was busy.
    assert_eq!(faulty.report.no_inst_attrs, clean.report.no_inst_attrs);
    assert!(faulty.report.faults_injected > 0, "no faults injected");
    assert!(faulty.report.retries > 0, "no retries recorded");

    // Every degraded attribute is reported, and the tallies agree with
    // the trace counters.
    assert_eq!(faulty.report.degraded_attrs, faulty.degraded.len());
    let totals = aggregate_run(&parse_jsonl("chaos", &trace).expect("trace parses"));
    assert_eq!(
        totals.counters.get(Counter::FaultAttrsDegraded),
        faulty.degraded.len() as u64
    );

    // Bounded degradation: with three attempts a 10% transient rate
    // leaves ~0.1% of calls failing, so matching accuracy stays within a
    // small margin of the clean run.
    let clean_f1 = enriched_f1(&ds, &clean);
    let faulty_f1 = enriched_f1(&ds, &faulty);
    assert!(
        clean_f1 - faulty_f1 <= 0.10,
        "F-1 degraded too far: clean {clean_f1:.4} vs faulty {faulty_f1:.4}"
    );
}

#[test]
fn breaker_walks_closed_open_half_open_closed() {
    let clock = VirtualClock::new();
    let breaker = CircuitBreaker::new(3, 500);
    assert_eq!(breaker.state(&clock), BreakerState::Closed);

    // Three consecutive failures trip it open; calls are then refused.
    for _ in 0..3 {
        assert!(breaker.allow(&clock));
        breaker.record_failure(&clock);
    }
    assert_eq!(breaker.state(&clock), BreakerState::Open);
    assert!(!breaker.allow(&clock));

    // After the cooldown it half-opens and admits one trial call.
    clock.advance_ms(500);
    assert_eq!(breaker.state(&clock), BreakerState::HalfOpen);
    assert!(breaker.allow(&clock));

    // A successful trial closes it again.
    breaker.record_success();
    assert_eq!(breaker.state(&clock), BreakerState::Closed);
    assert!(breaker.allow(&clock));
}

#[test]
fn sustained_faults_open_breakers_during_acquisition() {
    // Permanent faults at every call with a single attempt: failure
    // streaks build up and the per-attribute breakers trip.
    let fault = FaultConfig {
        seed: 3,
        permanent_rate: 1.0,
        max_attempts: 1,
        breaker_threshold: 2,
        ..FaultConfig::default()
    };
    let (acq, trace) = run_chaos(0, 1, fault);
    let totals = aggregate_run(&parse_jsonl("chaos", &trace).expect("trace parses"));
    assert!(
        totals.counters.get(Counter::FaultBreakerOpen) > 0,
        "breakers never opened"
    );
    assert!(acq.report.degraded_attrs > 0, "nothing reported degraded");
}

#[test]
fn quota_exhaustion_flags_a_diff_regression_naming_a_stage() {
    // Baseline: clean run. Candidate: same domain under a tiny daily
    // quota, which exhausts mid-run and drops validation to
    // statistics-only. The trace diff must call it a regression and
    // name the failing funnel stage, exactly as `webiq-report diff`
    // would in CI.
    let (_, base_trace) = run_chaos(0, 1, FaultConfig::default());
    let quota_cfg = FaultConfig {
        daily_quota: 40,
        ..FaultConfig::default()
    };
    let (acq, cand_trace) = run_chaos(0, 1, quota_cfg);
    assert!(acq.report.degraded_attrs > 0, "quota denial must degrade");

    let base = parse_jsonl("baseline", &base_trace).expect("baseline parses");
    let cand = parse_jsonl("candidate", &cand_trace).expect("candidate parses");
    let report = diff_events(
        "baseline",
        &base,
        "candidate",
        &cand,
        &DiffThresholds::default(),
    );
    assert!(report.regressed(), "quota exhaustion must gate the diff");
    let failures = report.regressions();
    assert!(
        failures.iter().any(|f| f.starts_with("stage ")),
        "no stage named in {failures:?}"
    );
    assert!(
        failures
            .iter()
            .any(|f| f == "counter fault_quota_denied" || f == "counter fault_attrs_degraded"),
        "fault counters must surface in the diff: {failures:?}"
    );
    assert!(report.render_text().contains("REGRESSION"));
}
