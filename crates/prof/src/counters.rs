//! The process-wide profiling registry: typed counters, peak gauges, and
//! per-stage timer accumulators behind relaxed atomics.
//!
//! Everything recorded here is *scheduling-dependent* — which thread won
//! a lock, which worker pulled which item, how long a stage took — so
//! none of it may enter the deterministic trace/obs stream (see
//! `webiq_trace::metrics` for that contract). The registry is a single
//! `static`: instrumentation sites anywhere in the workspace call the
//! free functions ([`incr`], [`add`], [`record_peak`],
//! [`record_worker`]) without any plumbing, and measurement tools take
//! [`snapshot`]s or [`reset`] between runs. All operations are relaxed
//! atomic adds/maxes: wait-free, allocation-free, and cheap enough to
//! stay always-on (the `prof_overhead` bench holds the total under 1%
//! of acquisition wall-clock).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of [`ProfCounter`] variants (the fixed registry size).
pub const NUM_PROF_COUNTERS: usize = 15;

/// Every profiling counter, in serialization order. The `WorkerMax*`
/// variants are *peaks* (merged by maximum, exported as gauges); all
/// others are monotonic tallies (exported as counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProfCounter {
    /// Cache-shard lock acquisitions (every `lock_shard` call).
    ShardLockAcquire,
    /// Shard acquisitions that found the lock held (`try_lock` failed
    /// and the caller blocked).
    ShardLockContended,
    /// Snippet-cache lookups served from the LRU.
    SearchCacheHit,
    /// Snippet-cache lookups that missed.
    SearchCacheMiss,
    /// Snippet-cache inserts that evicted an LRU entry.
    SearchCacheEvict,
    /// Hit-count-cache lookups served from the sharded map.
    HitCacheHit,
    /// Hit-count-cache lookups that missed.
    HitCacheMiss,
    /// Parsed-query-cache lookups served from the LRU.
    ParseCacheHit,
    /// Parsed-query-cache lookups that missed.
    ParseCacheMiss,
    /// Parsed-query-cache inserts that evicted an LRU entry.
    ParseCacheEvict,
    /// Acquisition worker loops completed (sequential runs count one).
    WorkerRuns,
    /// Work items processed across all workers.
    WorkerItems,
    /// Engine queries issued across all workers.
    WorkerQueries,
    /// Peak: most items processed by any single worker.
    WorkerMaxItems,
    /// Peak: most engine queries issued by any single worker.
    WorkerMaxQueries,
}

impl ProfCounter {
    /// All counters, in serialization order.
    pub const ALL: [ProfCounter; NUM_PROF_COUNTERS] = [
        ProfCounter::ShardLockAcquire,
        ProfCounter::ShardLockContended,
        ProfCounter::SearchCacheHit,
        ProfCounter::SearchCacheMiss,
        ProfCounter::SearchCacheEvict,
        ProfCounter::HitCacheHit,
        ProfCounter::HitCacheMiss,
        ProfCounter::ParseCacheHit,
        ProfCounter::ParseCacheMiss,
        ProfCounter::ParseCacheEvict,
        ProfCounter::WorkerRuns,
        ProfCounter::WorkerItems,
        ProfCounter::WorkerQueries,
        ProfCounter::WorkerMaxItems,
        ProfCounter::WorkerMaxQueries,
    ];

    /// The counter's stable snake_case name (the `webiq_prof_*` series
    /// name minus the prefix).
    pub fn name(self) -> &'static str {
        match self {
            ProfCounter::ShardLockAcquire => "lock_shard_acquire",
            ProfCounter::ShardLockContended => "lock_shard_contended",
            ProfCounter::SearchCacheHit => "search_cache_hit",
            ProfCounter::SearchCacheMiss => "search_cache_miss",
            ProfCounter::SearchCacheEvict => "search_cache_evict",
            ProfCounter::HitCacheHit => "hit_cache_hit",
            ProfCounter::HitCacheMiss => "hit_cache_miss",
            ProfCounter::ParseCacheHit => "parse_cache_hit",
            ProfCounter::ParseCacheMiss => "parse_cache_miss",
            ProfCounter::ParseCacheEvict => "parse_cache_evict",
            ProfCounter::WorkerRuns => "worker_runs",
            ProfCounter::WorkerItems => "worker_items",
            ProfCounter::WorkerQueries => "worker_queries",
            ProfCounter::WorkerMaxItems => "worker_max_items",
            ProfCounter::WorkerMaxQueries => "worker_max_queries",
        }
    }

    /// Inverse of [`ProfCounter::name`].
    pub fn from_name(name: &str) -> Option<ProfCounter> {
        ProfCounter::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Is this a peak (max-merged) counter rather than a monotonic tally?
    pub fn is_peak(self) -> bool {
        matches!(
            self,
            ProfCounter::WorkerMaxItems | ProfCounter::WorkerMaxQueries
        )
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Number of [`Stage`] variants.
pub const NUM_STAGES: usize = 7;

/// The pipeline stages the timing plane attributes wall-clock to, in
/// serialization order. Stages may nest ([`Stage::Probe`] time is also
/// inside [`Stage::Borrow`]; every engine round-trip is inside whichever
/// stage issued it), so shares are reported against the tree, not summed
/// across all stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// A cache-missing engine query (index matching + simulated
    /// round-trip), inside whichever component issued it.
    EngineQuery,
    /// Surface-Web instance discovery (§2): extraction queries and
    /// candidate harvesting, including verification.
    Extract,
    /// The §2.2 verification phase: outlier removal + PMI validation.
    Verify,
    /// Deep-Web borrow validation of one candidate attribute (§4).
    Borrow,
    /// Attr-Surface naive-Bayes validation of borrowed values (§3).
    Bayes,
    /// One Deep-Web probe submission (inside [`Stage::Borrow`]).
    Probe,
    /// The matcher's agglomerative cluster-merge loop (§5).
    ClusterMerge,
}

impl Stage {
    /// All stages, in serialization order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::EngineQuery,
        Stage::Extract,
        Stage::Verify,
        Stage::Borrow,
        Stage::Bayes,
        Stage::Probe,
        Stage::ClusterMerge,
    ];

    /// The stage's stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::EngineQuery => "engine_query",
            Stage::Extract => "extract",
            Stage::Verify => "verify",
            Stage::Borrow => "borrow",
            Stage::Bayes => "bayes",
            Stage::Probe => "probe",
            Stage::ClusterMerge => "cluster_merge",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// The registry's storage: one relaxed atomic per counter, plus a
/// nanosecond accumulator and a call tally per stage.
struct Registry {
    counts: [AtomicU64; NUM_PROF_COUNTERS],
    stage_nanos: [AtomicU64; NUM_STAGES],
    stage_calls: [AtomicU64; NUM_STAGES],
}

/// The single process-wide registry. A `static` (not a `OnceLock`): the
/// instrumentation sits on lock/cache hot paths where even a
/// load-and-branch per call would be measurable, and the zero state is
/// `const`-constructible.
static REGISTRY: Registry = Registry {
    counts: [const { AtomicU64::new(0) }; NUM_PROF_COUNTERS],
    stage_nanos: [const { AtomicU64::new(0) }; NUM_STAGES],
    stage_calls: [const { AtomicU64::new(0) }; NUM_STAGES],
};

/// Add 1 to `c`.
#[inline]
pub fn incr(c: ProfCounter) {
    REGISTRY.counts[c.idx()].fetch_add(1, Ordering::Relaxed);
}

/// Add `n` to `c`.
#[inline]
pub fn add(c: ProfCounter, n: u64) {
    REGISTRY.counts[c.idx()].fetch_add(n, Ordering::Relaxed);
}

/// Raise the peak counter `c` to at least `v` (no-op when `v` is below
/// the recorded peak). Intended for the `WorkerMax*` variants but safe
/// on any counter.
#[inline]
pub fn record_peak(c: ProfCounter, v: u64) {
    REGISTRY.counts[c.idx()].fetch_max(v, Ordering::Relaxed);
}

/// Record one finished acquisition worker loop: its item and query
/// totals feed both the sums and the peaks, from which a profile report
/// derives mean load and imbalance.
pub fn record_worker(items: u64, queries: u64) {
    incr(ProfCounter::WorkerRuns);
    add(ProfCounter::WorkerItems, items);
    add(ProfCounter::WorkerQueries, queries);
    record_peak(ProfCounter::WorkerMaxItems, items);
    record_peak(ProfCounter::WorkerMaxQueries, queries);
}

/// Credit `nanos` of wall-clock (and one call) to `stage`. Called by
/// [`crate::timing::time`]; public so the timing module stays the only
/// place that *reads* clocks while the accumulator lives here.
#[inline]
pub fn record_stage(stage: Stage, nanos: u64) {
    REGISTRY.stage_nanos[stage.idx()].fetch_add(nanos, Ordering::Relaxed);
    REGISTRY.stage_calls[stage.idx()].fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time copy of the whole registry.
pub fn snapshot() -> ProfSnapshot {
    let mut s = ProfSnapshot::new();
    for (v, a) in s.counts.iter_mut().zip(REGISTRY.counts.iter()) {
        *v = a.load(Ordering::Relaxed);
    }
    for (v, a) in s.stage_nanos.iter_mut().zip(REGISTRY.stage_nanos.iter()) {
        *v = a.load(Ordering::Relaxed);
    }
    for (v, a) in s.stage_calls.iter_mut().zip(REGISTRY.stage_calls.iter()) {
        *v = a.load(Ordering::Relaxed);
    }
    s
}

/// Zero every counter and stage accumulator. For single-purpose
/// measurement processes (the `experiments profile` sweep resets between
/// thread counts); long-lived services should diff [`snapshot`]s instead.
pub fn reset() {
    for a in &REGISTRY.counts {
        a.store(0, Ordering::Relaxed);
    }
    for a in &REGISTRY.stage_nanos {
        a.store(0, Ordering::Relaxed);
    }
    for a in &REGISTRY.stage_calls {
        a.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the profiling registry: counter values plus
/// per-stage nanosecond and call accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfSnapshot {
    counts: [u64; NUM_PROF_COUNTERS],
    stage_nanos: [u64; NUM_STAGES],
    stage_calls: [u64; NUM_STAGES],
}

impl ProfSnapshot {
    /// An all-zero snapshot.
    pub const fn new() -> Self {
        ProfSnapshot {
            counts: [0; NUM_PROF_COUNTERS],
            stage_nanos: [0; NUM_STAGES],
            stage_calls: [0; NUM_STAGES],
        }
    }

    /// Current value of `c`.
    pub fn get(&self, c: ProfCounter) -> u64 {
        self.counts[c.idx()]
    }

    /// Set `c` to `v` — for building snapshots from parsed artifacts
    /// (Prometheus text, `PROF_BASELINE.json` sweep points).
    pub fn set(&mut self, c: ProfCounter, v: u64) {
        self.counts[c.idx()] = v;
    }

    /// Set stage `s`'s accumulators — the parsing counterpart of
    /// [`ProfSnapshot::stage_nanos`] / [`ProfSnapshot::stage_calls`].
    pub fn set_stage(&mut self, s: Stage, nanos: u64, calls: u64) {
        self.stage_nanos[s.idx()] = nanos;
        self.stage_calls[s.idx()] = calls;
    }

    /// Accumulated wall-clock nanoseconds of `s`.
    pub fn stage_nanos(&self, s: Stage) -> u64 {
        self.stage_nanos[s.idx()]
    }

    /// Accumulated wall-clock of `s`, in seconds.
    pub fn stage_secs(&self, s: Stage) -> f64 {
        self.stage_nanos(s) as f64 / 1e9
    }

    /// Number of timed calls recorded under `s`.
    pub fn stage_calls(&self, s: Stage) -> u64 {
        self.stage_calls[s.idx()]
    }

    /// True when nothing has been recorded.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&v| v == 0)
            && self.stage_nanos.iter().all(|&v| v == 0)
            && self.stage_calls.iter().all(|&v| v == 0)
    }

    /// Activity between `earlier` and `self`: tallies and stage
    /// accumulators subtract (saturating); peak counters keep `self`'s
    /// value — a peak is not recoverable over a sub-interval, and the
    /// later peak is the tightest bound available.
    pub fn diff(&self, earlier: &ProfSnapshot) -> ProfSnapshot {
        let mut out = *self;
        for &c in &ProfCounter::ALL {
            if !c.is_peak() {
                out.set(c, self.get(c).saturating_sub(earlier.get(c)));
            }
        }
        for (o, b) in out.stage_nanos.iter_mut().zip(earlier.stage_nanos.iter()) {
            *o = o.saturating_sub(*b);
        }
        for (o, b) in out.stage_calls.iter_mut().zip(earlier.stage_calls.iter()) {
            *o = o.saturating_sub(*b);
        }
        out
    }

    /// Fraction of shard-lock acquisitions that found the lock held, in
    /// `[0, 1]` (0 when no acquisitions were recorded).
    pub fn contention_ratio(&self) -> f64 {
        ratio(
            self.get(ProfCounter::ShardLockContended),
            self.get(ProfCounter::ShardLockAcquire),
        )
    }

    /// Cache hit rate of the named hit/miss pair, in `[0, 1]`.
    pub fn hit_rate(&self, hit: ProfCounter, miss: ProfCounter) -> f64 {
        ratio(self.get(hit), self.get(hit) + self.get(miss))
    }

    /// Worker load imbalance: `max_items / mean_items − 1`, so 0 means
    /// perfectly even and 1 means the busiest worker did twice the mean.
    /// 0 when fewer than two worker loops were recorded.
    pub fn imbalance(&self) -> f64 {
        let runs = self.get(ProfCounter::WorkerRuns);
        let items = self.get(ProfCounter::WorkerItems);
        if runs < 2 || items == 0 {
            return 0.0;
        }
        let mean = items as f64 / runs as f64;
        (self.get(ProfCounter::WorkerMaxItems) as f64 / mean - 1.0).max(0.0)
    }

    /// Total wall-clock credited to all stages, in nanoseconds. Stages
    /// nest, so this over-counts relative to elapsed time; useful only
    /// as an upper bound (e.g. the overhead bench's op budget).
    pub fn total_stage_nanos(&self) -> u64 {
        self.stage_nanos
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Render as Prometheus text: `webiq_prof_*_total` counters,
    /// `webiq_prof_worker_max_*` peak gauges, and per-stage
    /// `webiq_prof_stage_<name>_{nanos,calls}_total` accumulators.
    /// Families appear in fixed order with zero values included, so
    /// equal snapshots render byte-identically.
    pub fn render_prom(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &c in &ProfCounter::ALL {
            let name = c.name();
            if c.is_peak() {
                let _ = writeln!(out, "# TYPE webiq_prof_{name} gauge");
                let _ = writeln!(out, "webiq_prof_{name} {}", self.get(c));
            } else {
                let _ = writeln!(out, "# TYPE webiq_prof_{name}_total counter");
                let _ = writeln!(out, "webiq_prof_{name}_total {}", self.get(c));
            }
        }
        for &s in &Stage::ALL {
            let name = s.name();
            let _ = writeln!(out, "# TYPE webiq_prof_stage_{name}_nanos_total counter");
            let _ = writeln!(
                out,
                "webiq_prof_stage_{name}_nanos_total {}",
                self.stage_nanos(s)
            );
            let _ = writeln!(out, "# TYPE webiq_prof_stage_{name}_calls_total counter");
            let _ = writeln!(
                out,
                "webiq_prof_stage_{name}_calls_total {}",
                self.stage_calls(s)
            );
        }
        out
    }

    /// Parse the `webiq_prof_*` series out of Prometheus text (a
    /// `/metrics` scrape or a [`ProfSnapshot::render_prom`] file).
    /// Comment lines, non-prof families, and malformed values are
    /// skipped — absent series simply stay zero.
    pub fn from_prom_text(text: &str) -> ProfSnapshot {
        let mut s = ProfSnapshot::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, value)) = line.split_once(' ') else {
                continue;
            };
            let Ok(v) = value.trim().parse::<u64>() else {
                continue;
            };
            let Some(rest) = name.strip_prefix("webiq_prof_") else {
                continue;
            };
            if let Some(stage_part) = rest.strip_prefix("stage_") {
                if let Some(stage) = stage_part
                    .strip_suffix("_nanos_total")
                    .and_then(Stage::from_name)
                {
                    s.stage_nanos[stage.idx()] = v;
                } else if let Some(stage) = stage_part
                    .strip_suffix("_calls_total")
                    .and_then(Stage::from_name)
                {
                    s.stage_calls[stage.idx()] = v;
                }
            } else if let Some(c) = rest
                .strip_suffix("_total")
                .and_then(ProfCounter::from_name)
                .or_else(|| ProfCounter::from_name(rest).filter(|c| c.is_peak()))
            {
                s.set(c, v);
            }
        }
        s
    }
}

/// `n / d` as a ratio, 0 when the denominator is 0.
fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests that reset it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn names_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &c in &ProfCounter::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert_eq!(ProfCounter::from_name(c.name()), Some(c));
        }
        assert_eq!(ProfCounter::ALL.len(), NUM_PROF_COUNTERS);
        for &s in &Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::ALL.len(), NUM_STAGES);
        assert_eq!(ProfCounter::from_name("nope"), None);
        assert_eq!(Stage::from_name("nope"), None);
    }

    #[test]
    fn incr_add_peak_and_reset() {
        let _g = lock();
        reset();
        incr(ProfCounter::ShardLockAcquire);
        add(ProfCounter::ShardLockAcquire, 4);
        record_peak(ProfCounter::WorkerMaxItems, 9);
        record_peak(ProfCounter::WorkerMaxItems, 3); // below peak: no-op
        record_stage(Stage::Extract, 1_000);
        let s = snapshot();
        assert_eq!(s.get(ProfCounter::ShardLockAcquire), 5);
        assert_eq!(s.get(ProfCounter::WorkerMaxItems), 9);
        assert_eq!(s.stage_nanos(Stage::Extract), 1_000);
        assert_eq!(s.stage_calls(Stage::Extract), 1);
        assert!((s.stage_secs(Stage::Extract) - 1e-6).abs() < 1e-15);
        reset();
        assert!(snapshot().is_zero());
    }

    #[test]
    fn record_worker_feeds_sums_and_peaks() {
        let _g = lock();
        reset();
        record_worker(10, 100);
        record_worker(4, 20);
        let s = snapshot();
        assert_eq!(s.get(ProfCounter::WorkerRuns), 2);
        assert_eq!(s.get(ProfCounter::WorkerItems), 14);
        assert_eq!(s.get(ProfCounter::WorkerQueries), 120);
        assert_eq!(s.get(ProfCounter::WorkerMaxItems), 10);
        assert_eq!(s.get(ProfCounter::WorkerMaxQueries), 100);
        // mean items = 7, max = 10 -> imbalance = 10/7 - 1
        assert!((s.imbalance() - (10.0 / 7.0 - 1.0)).abs() < 1e-12);
        reset();
    }

    #[test]
    fn diff_subtracts_tallies_and_keeps_peaks() {
        let mut a = ProfSnapshot::new();
        a.set(ProfCounter::ShardLockAcquire, 10);
        a.set(ProfCounter::WorkerMaxItems, 5);
        let mut b = ProfSnapshot::new();
        b.set(ProfCounter::ShardLockAcquire, 25);
        b.set(ProfCounter::WorkerMaxItems, 8);
        b.stage_nanos[Stage::Verify as usize] = 300;
        let d = b.diff(&a);
        assert_eq!(d.get(ProfCounter::ShardLockAcquire), 15);
        assert_eq!(d.get(ProfCounter::WorkerMaxItems), 8); // peak kept
        assert_eq!(d.stage_nanos(Stage::Verify), 300);
        // saturation, never wrap
        assert_eq!(a.diff(&b).get(ProfCounter::ShardLockAcquire), 0);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = ProfSnapshot::new();
        assert_eq!(s.contention_ratio(), 0.0);
        assert_eq!(
            s.hit_rate(ProfCounter::SearchCacheHit, ProfCounter::SearchCacheMiss),
            0.0
        );
        assert_eq!(s.imbalance(), 0.0);
        let mut s = ProfSnapshot::new();
        s.set(ProfCounter::ShardLockAcquire, 8);
        s.set(ProfCounter::ShardLockContended, 2);
        assert!((s.contention_ratio() - 0.25).abs() < 1e-12);
        s.set(ProfCounter::SearchCacheHit, 3);
        s.set(ProfCounter::SearchCacheMiss, 1);
        assert!(
            (s.hit_rate(ProfCounter::SearchCacheHit, ProfCounter::SearchCacheMiss) - 0.75).abs()
                < 1e-12
        );
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut s = ProfSnapshot::new();
        s.set(ProfCounter::ShardLockAcquire, 42);
        s.set(ProfCounter::SearchCacheEvict, 7);
        s.set(ProfCounter::WorkerMaxQueries, 99);
        s.stage_nanos[Stage::EngineQuery as usize] = 123_456;
        s.stage_calls[Stage::EngineQuery as usize] = 78;
        let text = s.render_prom();
        assert!(text.contains("# TYPE webiq_prof_lock_shard_acquire_total counter\n"));
        assert!(text.contains("webiq_prof_lock_shard_acquire_total 42\n"));
        assert!(text.contains("# TYPE webiq_prof_worker_max_queries gauge\n"));
        assert!(text.contains("webiq_prof_worker_max_queries 99\n"));
        assert!(text.contains("webiq_prof_stage_engine_query_nanos_total 123456\n"));
        assert!(text.contains("webiq_prof_stage_engine_query_calls_total 78\n"));
        // zero-valued families are present, not skipped
        assert!(text.contains("webiq_prof_hit_cache_miss_total 0\n"));
        assert_eq!(ProfSnapshot::from_prom_text(&text), s);
        // equal snapshots render byte-identically
        assert_eq!(s.render_prom(), s.render_prom());
    }

    #[test]
    fn parse_skips_foreign_and_malformed_lines() {
        let text = "\
# HELP something
webiq_items_total 5
webiq_prof_lock_shard_acquire_total notanumber
webiq_prof_lock_shard_contended_total 3
webiq_prof_stage_bogus_nanos_total 9
garbage
";
        let s = ProfSnapshot::from_prom_text(text);
        assert_eq!(s.get(ProfCounter::ShardLockContended), 3);
        assert_eq!(s.get(ProfCounter::ShardLockAcquire), 0);
        for &stage in &Stage::ALL {
            assert_eq!(s.stage_nanos(stage), 0);
        }
    }

    #[test]
    fn total_stage_nanos_sums_all_stages() {
        let mut s = ProfSnapshot::new();
        s.stage_nanos[Stage::Extract as usize] = 10;
        s.stage_nanos[Stage::Probe as usize] = 32;
        assert_eq!(s.total_stage_nanos(), 42);
    }
}
