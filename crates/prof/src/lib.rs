//! # webiq-prof — always-on performance attribution for WebIQ
//!
//! The layer *beside* [`webiq-trace`]: where trace records what the
//! pipeline *did* (deterministically, byte-identical at any worker
//! count), prof records what it *cost* — lock contention, cache
//! effectiveness, per-worker load balance, and per-stage wall-clock.
//! Those quantities are inherently scheduling-dependent, so they are
//! kept strictly out of the deterministic trace/obs stream and
//! accumulated in one process-wide atomic registry instead. The split
//! has two planes:
//!
//! - **Counting plane** ([`counters`]): lock acquisition/contention
//!   tallies from the engine's cache shards, cache hit/miss/eviction
//!   attribution per cache, and per-worker items/queries with peak
//!   counters for imbalance diagnosis. Cheap relaxed atomics, always on.
//! - **Timing plane** ([`timing`]): per-stage monotonic timers (engine
//!   query, extract, verify, borrow, bayes, probe, cluster-merge).
//!   Wall-clock reads are confined to `timing.rs` — the sanctioned
//!   module name the workspace lint exempts — so the flow-taint pass
//!   still certifies that no wall-clock value leaks into the
//!   deterministic streams.
//!
//! A [`ProfSnapshot`] is a point-in-time copy of everything, renderable
//! as `webiq_prof_*` Prometheus series ([`ProfSnapshot::render_prom`])
//! and parseable back from a scrape ([`ProfSnapshot::from_prom_text`])
//! so regression gates can diff two profiles. The `prof_overhead` bench
//! pins the whole apparatus under 1% of acquisition wall-clock.
//!
//! Like every library crate in the workspace, webiq-prof is
//! dependency-free and panic-free.
#![forbid(unsafe_code)]

pub mod counters;
pub mod timing;

pub use counters::{
    add, incr, record_peak, record_worker, reset, snapshot, ProfCounter, ProfSnapshot, Stage,
    NUM_PROF_COUNTERS, NUM_STAGES,
};
pub use timing::time;
