//! The wall-clock timing plane — the only module in webiq-prof that
//! reads a clock.
//!
//! [`time`] brackets a closure with a monotonic [`Instant`] and credits
//! the elapsed nanoseconds to a [`Stage`] accumulator in the global
//! registry. Confining every clock read to this file keeps the
//! workspace's wall-clock hygiene auditable: the lexical lint exempts
//! `timing.rs` by name, and the flow-taint pass can certify that timed
//! values flow only into the profiling registry — never into the
//! deterministic trace/obs streams.

use std::time::Instant;

use crate::counters::{record_stage, Stage};

/// Run `f`, crediting its wall-clock to `stage`, and return its result.
///
/// The overhead is one `Instant::now` pair plus two relaxed atomic adds
/// (see the `prof_overhead` bench); elapsed times beyond ~584 years
/// saturate rather than wrap.
#[inline]
pub fn time<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    record_stage(stage, nanos);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{reset, snapshot};

    #[test]
    fn time_records_nanos_and_calls_and_returns_value() {
        // Not under the counters test lock: only asserts monotone growth,
        // which concurrent tests cannot undo (reset() racing is excluded
        // by running this against deltas of a dedicated stage).
        let before = snapshot();
        let v = time(Stage::ClusterMerge, || 21 * 2);
        assert_eq!(v, 42);
        let after = snapshot();
        assert!(after.stage_calls(Stage::ClusterMerge) >= before.stage_calls(Stage::ClusterMerge));
        // a second timed call advances the call tally
        let c0 = snapshot().stage_calls(Stage::ClusterMerge);
        time(Stage::ClusterMerge, || ());
        assert!(snapshot().stage_calls(Stage::ClusterMerge) > c0);
        let _ = reset; // referenced: see counters tests for reset coverage
    }
}
