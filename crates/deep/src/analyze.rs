//! Response-page analysis: did a probing submission succeed?
//!
//! §4: "This step applies several heuristics to analyze the response page
//! from the source and determine if the submission was successful. We
//! employ a variant of the heuristics used for a similar purpose in [22]"
//! (Raghavan & Garcia-Molina, *Crawling the hidden Web*). The heuristics
//! operate on the parsed page:
//!
//! 1. error indicators in the visible text ("error", "invalid", "required",
//!    "try again") → failure;
//! 2. no-match indicators ("no results", "nothing found", "0 results") →
//!    no results;
//! 3. result-row counting (`<tr class=result>`, result tables/lists) →
//!    success with a result count;
//! 4. otherwise, fall back on a text-volume heuristic: a page with
//!    substantially more content than an empty-results page is presumed to
//!    carry results.

use webiq_html::dom;

/// Classified outcome of one probe submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionOutcome {
    /// The source returned data records.
    Success {
        /// Number of result rows detected (best-effort).
        results: usize,
    },
    /// The source answered normally but found nothing.
    NoResults,
    /// The source rejected the query or failed.
    Error,
}

impl SubmissionOutcome {
    /// True for [`SubmissionOutcome::Success`].
    pub fn is_success(self) -> bool {
        matches!(self, SubmissionOutcome::Success { .. })
    }
}

static ERROR_MARKERS: &[&str] = &[
    "internal server error",
    "error:",
    "an error occurred",
    "invalid value",
    "invalid input",
    "is required",
    "required field",
    "please try again",
    "bad request",
];

static NO_RESULT_MARKERS: &[&str] = &[
    "no results",
    "no matches",
    "nothing found",
    "not found",
    "0 results",
    "found 0 matching",
    "no records",
    "did not match",
    "no listings",
];

/// Analyze a response page.
pub fn analyze_response(html: &str) -> SubmissionOutcome {
    let doc = dom::parse_document(html);
    let text = doc.text().to_ascii_lowercase();

    if ERROR_MARKERS.iter().any(|m| text.contains(m)) {
        return SubmissionOutcome::Error;
    }
    if NO_RESULT_MARKERS.iter().any(|m| text.contains(m)) {
        return SubmissionOutcome::NoResults;
    }

    // Count result rows: explicit result-classed rows first, then generic
    // table rows beyond a header.
    let mut rows = Vec::new();
    doc.find_all("tr", &mut rows);
    let result_rows = rows
        .iter()
        .filter(|r| {
            r.attr("class")
                .is_some_and(|c| c.to_ascii_lowercase().contains("result"))
        })
        .count();
    if result_rows > 0 {
        return SubmissionOutcome::Success {
            results: result_rows,
        };
    }
    if rows.len() > 1 {
        // header + data rows
        return SubmissionOutcome::Success {
            results: rows.len() - 1,
        };
    }
    let mut items = Vec::new();
    doc.find_all("li", &mut items);
    if !items.is_empty() {
        return SubmissionOutcome::Success {
            results: items.len(),
        };
    }

    // "found N matching" style summaries
    if let Some(n) = extract_found_count(&text) {
        return if n > 0 {
            SubmissionOutcome::Success { results: n }
        } else {
            SubmissionOutcome::NoResults
        };
    }

    // Text-volume fallback: pages of meaningful size presumably carry data.
    if text.len() > 400 {
        SubmissionOutcome::Success { results: 1 }
    } else {
        SubmissionOutcome::NoResults
    }
}

/// Parse "found N matching" / "N results" phrases.
fn extract_found_count(text: &str) -> Option<usize> {
    for marker in ["found ", "showing "] {
        if let Some(pos) = text.find(marker) {
            let rest = &text[pos + marker.len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if !digits.is_empty() {
                return digits.parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::render;

    #[test]
    fn classifies_results_page() {
        let r = Record::new([("from", "Chicago")]);
        let page = render::results_page("X", &[&r]);
        assert_eq!(
            analyze_response(&page),
            SubmissionOutcome::Success { results: 1 }
        );
    }

    #[test]
    fn classifies_no_results_page() {
        let page = render::no_results_page("X");
        assert_eq!(analyze_response(&page), SubmissionOutcome::NoResults);
    }

    #[test]
    fn classifies_error_page() {
        let page = render::error_page("X", "invalid value for field 'airline'");
        assert_eq!(analyze_response(&page), SubmissionOutcome::Error);
    }

    #[test]
    fn classifies_server_error() {
        assert_eq!(
            analyze_response(&render::server_error_page()),
            SubmissionOutcome::Error
        );
    }

    #[test]
    fn counts_result_rows() {
        let r1 = Record::new([("a", "1")]);
        let r2 = Record::new([("a", "2")]);
        let r3 = Record::new([("a", "3")]);
        let page = render::results_page("X", &[&r1, &r2, &r3]);
        assert_eq!(
            analyze_response(&page),
            SubmissionOutcome::Success { results: 3 }
        );
    }

    #[test]
    fn foreign_no_results_wording() {
        let html = "<html><body><p>Your search did not match any documents.</p></body></html>";
        assert_eq!(analyze_response(html), SubmissionOutcome::NoResults);
    }

    #[test]
    fn list_based_results() {
        let html = "<html><body><ul><li>Item A</li><li>Item B</li></ul></body></html>";
        assert_eq!(
            analyze_response(html),
            SubmissionOutcome::Success { results: 2 }
        );
    }

    #[test]
    fn short_uninformative_page_is_no_results() {
        assert_eq!(
            analyze_response("<html><body>ok</body></html>"),
            SubmissionOutcome::NoResults
        );
    }

    #[test]
    fn long_content_page_presumed_success() {
        let body = "data ".repeat(200);
        let html = format!("<html><body><div>{body}</div></body></html>");
        assert!(analyze_response(&html).is_success());
    }

    #[test]
    fn success_predicate() {
        assert!(SubmissionOutcome::Success { results: 1 }.is_success());
        assert!(!SubmissionOutcome::NoResults.is_success());
        assert!(!SubmissionOutcome::Error.is_success());
    }
}
