//! A simulated Deep-Web data source: a form handler over a record store.
//!
//! `submit` takes the form parameters (attribute name → value), runs the
//! backend query, and returns an HTML response page. Behaviour mirrors what
//! the paper relies on (§4):
//!
//! - **partial queries are permitted** — unspecified/empty values are
//!   unconstrained ("many interfaces permit partial queries");
//! - **pre-defined domains are enforced** — a `<select>`-backed attribute
//!   rejects values outside its option list with an error page;
//! - ill-typed free-text values simply select nothing → "no results";
//! - optional **failure injection** deterministically returns server
//!   errors for a configurable fraction of probes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use webiq_fault::FaultPlan;
use webiq_trace::Counter;

use crate::error::DeepError;
use crate::record::{Record, RecordStore};
use crate::render;

/// How (and whether) the source injects failures.
#[derive(Debug, Clone, Default)]
enum Injection {
    /// No injection: every valid submission reaches the backend.
    #[default]
    None,
    /// Legacy attempt-blind injection: a fixed fraction of submissions
    /// (chosen purely by a hash of the parameters) always fail — retrying
    /// can never succeed. Kept byte-identical to the historical behaviour
    /// and bumps no fault counters.
    LegacyRate(f64),
    /// Attempt-aware injection driven by a [`FaultPlan`]: transient faults
    /// can clear on a later attempt, permanent ones never do. Injections
    /// are tallied under [`Counter::FaultInjected`].
    Plan(FaultPlan),
}

/// Constraint a source places on one of its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamDomain {
    /// Free-text parameter: any value accepted, matching done by the store.
    Free,
    /// Pre-defined values (a `<select>`/radio attribute): values outside
    /// the list are rejected with an error page.
    Enumerated(Vec<String>),
}

/// A parameter the source's form accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceParam {
    /// Parameter (form-control) name.
    pub name: String,
    /// Accepted values.
    pub domain: ParamDomain,
    /// Whether the source requires this parameter to be non-empty.
    pub required: bool,
}

/// A simulated Deep-Web source.
#[derive(Debug)]
pub struct DeepSource {
    /// Human-readable source name (used in response pages).
    pub name: String,
    params: Vec<SourceParam>,
    store: RecordStore,
    injection: Injection,
    probes: AtomicU64,
}

impl DeepSource {
    /// Stand up a source over `store` accepting `params`.
    pub fn new(name: impl Into<String>, params: Vec<SourceParam>, store: RecordStore) -> Self {
        DeepSource {
            name: name.into(),
            params,
            store,
            injection: Injection::None,
            probes: AtomicU64::new(0),
        }
    }

    /// Enable deterministic failure injection: a `rate` fraction of
    /// submissions (chosen by a hash of the parameters) return a server
    /// error page. These failures are *permanent* — the draw ignores the
    /// attempt number, so a failing submission fails on every retry. Use
    /// [`DeepSource::with_fault_plan`] for transient, attempt-aware faults.
    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        self.injection = Injection::LegacyRate(rate.clamp(0.0, 1.0));
        self
    }

    /// Enable attempt-aware failure injection driven by `plan`. The fault
    /// drawn for a submission is a pure function of the source name, the
    /// parameter hash, and the attempt number, so transient faults can
    /// clear on retry while permanent ones never do. Every injected fault
    /// bumps [`Counter::FaultInjected`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injection = Injection::Plan(plan);
        self
    }

    /// The source's accepted parameters.
    pub fn params(&self) -> &[SourceParam] {
        &self.params
    }

    /// Number of probe submissions served so far.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Number of backend records.
    pub fn record_count(&self) -> usize {
        self.store.len()
    }

    /// Submit the form with `values` (name → value; empty string = leave
    /// unspecified). Returns the matching records, or a structured
    /// [`DeepError`] describing why the source rejected the submission.
    ///
    /// Every submission bumps the thread-local trace counters: one
    /// [`Counter::ProbesIssued`] plus exactly one outcome-class counter.
    /// Failure injection is a pure function of the parameters, so these
    /// tallies are deterministic and safe for the trace event stream.
    pub fn try_submit(&self, values: &BTreeMap<String, String>) -> Result<Vec<&Record>, DeepError> {
        self.try_submit_attempt(values, 0)
    }

    /// [`DeepSource::try_submit`] with an explicit attempt number. Under a
    /// [`FaultPlan`] the injected fault is a pure function of
    /// `(source name, parameter hash, attempt)`, so a retry layer can pass
    /// increasing attempt numbers and see transient faults clear.
    pub fn try_submit_attempt(
        &self,
        values: &BTreeMap<String, String>,
        attempt: u32,
    ) -> Result<Vec<&Record>, DeepError> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        webiq_trace::incr(Counter::ProbesIssued);
        let result = self.serve(values, attempt);
        webiq_trace::incr(match &result {
            Ok(matches) if matches.is_empty() => Counter::ProbeEmpty,
            Ok(_) => Counter::ProbeMatched,
            Err(DeepError::ServerError) => Counter::ProbeServerError,
            Err(_) => Counter::ProbeRejected,
        });
        result
    }

    /// The form handler behind [`DeepSource::try_submit`]: validation,
    /// failure injection, and the backend query.
    fn serve(
        &self,
        values: &BTreeMap<String, String>,
        attempt: u32,
    ) -> Result<Vec<&Record>, DeepError> {
        match &self.injection {
            Injection::None => {}
            Injection::LegacyRate(rate) => {
                if *rate > 0.0 {
                    let h = param_hash(values);
                    if (h % 10_000) as f64 / 10_000.0 < *rate {
                        return Err(DeepError::ServerError);
                    }
                }
            }
            Injection::Plan(plan) => {
                // DeepError carries no timeout/rate-limit variants: an HTML
                // endpoint surfaces every injected fault as a 500 page.
                if plan
                    .decide(&self.name, param_hash(values), attempt)
                    .is_some()
                {
                    webiq_trace::incr(Counter::FaultInjected);
                    return Err(DeepError::ServerError);
                }
            }
        }

        // Validate against parameter domains.
        for p in &self.params {
            let supplied = values.get(&p.name).map_or("", String::as_str);
            if supplied.trim().is_empty() {
                if p.required {
                    return Err(DeepError::MissingRequired {
                        field: p.name.clone(),
                    });
                }
                continue;
            }
            if let ParamDomain::Enumerated(allowed) = &p.domain {
                if !allowed
                    .iter()
                    .any(|a| a.eq_ignore_ascii_case(supplied.trim()))
                {
                    return Err(DeepError::InvalidValue {
                        field: p.name.clone(),
                    });
                }
            }
        }

        // Unknown parameter names are ignored by real CGI endpoints; only
        // known ones constrain the query.
        let known: BTreeMap<String, String> = values
            .iter()
            .filter(|(k, _)| self.params.iter().any(|p| &p.name == *k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();

        Ok(self.store.query(&known))
    }

    /// [`DeepSource::try_submit`] rendered the way a browser would see
    /// it: the HTML response page, with every [`DeepError`] mapped to the
    /// corresponding error page.
    pub fn submit(&self, values: &BTreeMap<String, String>) -> String {
        self.submit_attempt(values, 0)
    }

    /// [`DeepSource::submit`] with an explicit attempt number (see
    /// [`DeepSource::try_submit_attempt`]).
    pub fn submit_attempt(&self, values: &BTreeMap<String, String>, attempt: u32) -> String {
        match self.try_submit_attempt(values, attempt) {
            Ok(matches) if matches.is_empty() => render::no_results_page(&self.name),
            Ok(matches) => render::results_page(&self.name, &matches),
            Err(DeepError::ServerError) => render::server_error_page(),
            Err(DeepError::MissingRequired { field }) => {
                render::error_page(&self.name, &format!("field '{field}' is required"))
            }
            Err(DeepError::InvalidValue { field }) => {
                render::error_page(&self.name, &format!("invalid value for field '{field}'"))
            }
        }
    }
}

/// Deterministic hash of the submitted parameters (FNV-1a).
fn param_hash(values: &BTreeMap<String, String>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (k, v) in values {
        for b in k.bytes().chain([0u8]).chain(v.bytes()).chain([0u8]) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn source() -> DeepSource {
        let store = RecordStore::new(vec![
            Record::new([("from", "Chicago"), ("to", "Boston"), ("airline", "United")]),
            Record::new([("from", "Chicago"), ("to", "Denver"), ("airline", "Delta")]),
            Record::new([("from", "Seattle"), ("to", "Boston"), ("airline", "Alaska")]),
        ]);
        DeepSource::new(
            "AcmeAir",
            vec![
                SourceParam {
                    name: "from".into(),
                    domain: ParamDomain::Free,
                    required: false,
                },
                SourceParam {
                    name: "to".into(),
                    domain: ParamDomain::Free,
                    required: false,
                },
                SourceParam {
                    name: "airline".into(),
                    domain: ParamDomain::Enumerated(vec![
                        "United".into(),
                        "Delta".into(),
                        "Alaska".into(),
                    ]),
                    required: false,
                },
            ],
            store,
        )
    }

    fn params(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect()
    }

    #[test]
    fn valid_probe_returns_results() {
        let s = source();
        let page = s.submit(&params(&[("from", "Chicago")]));
        assert!(page.contains("Found 2 matching results"), "{page}");
    }

    #[test]
    fn ill_typed_probe_returns_no_results() {
        let s = source();
        let page = s.submit(&params(&[("from", "January")]));
        assert!(page.contains("no results"), "{page}");
    }

    #[test]
    fn enumerated_domain_rejects_unknown_value() {
        let s = source();
        let page = s.submit(&params(&[("airline", "Aer Lingus")]));
        assert!(page.contains("invalid value"), "{page}");
    }

    #[test]
    fn enumerated_domain_accepts_case_insensitively() {
        let s = source();
        let page = s.submit(&params(&[("airline", "delta")]));
        assert!(page.contains("Found 1 matching results"), "{page}");
    }

    #[test]
    fn partial_query_with_all_defaults() {
        let s = source();
        let page = s.submit(&params(&[("from", ""), ("to", "")]));
        assert!(page.contains("Found 3 matching results"), "{page}");
    }

    #[test]
    fn required_field_enforced() {
        let store = RecordStore::new(vec![Record::new([("q", "x")])]);
        let s = DeepSource::new(
            "Req",
            vec![SourceParam {
                name: "q".into(),
                domain: ParamDomain::Free,
                required: true,
            }],
            store,
        );
        let page = s.submit(&params(&[]));
        assert!(page.contains("required"), "{page}");
    }

    #[test]
    fn unknown_params_ignored() {
        let s = source();
        let page = s.submit(&params(&[("bogus", "value")]));
        assert!(page.contains("Found 3 matching results"), "{page}");
    }

    #[test]
    fn probe_outcome_counters_classify_responses() {
        let before = webiq_trace::snapshot();
        let s = source();
        let _ = s.try_submit(&params(&[("from", "Chicago")])); // matched
        let _ = s.try_submit(&params(&[("from", "January")])); // empty
        let _ = s.try_submit(&params(&[("airline", "Aer Lingus")])); // rejected
        let f = source().with_failure_rate(1.0);
        let _ = f.try_submit(&params(&[("from", "Chicago")])); // server error
        let d = webiq_trace::snapshot().diff(&before);
        assert_eq!(d.get(Counter::ProbesIssued), 4);
        assert_eq!(d.get(Counter::ProbeMatched), 1);
        assert_eq!(d.get(Counter::ProbeEmpty), 1);
        assert_eq!(d.get(Counter::ProbeRejected), 1);
        assert_eq!(d.get(Counter::ProbeServerError), 1);
    }

    #[test]
    fn probe_counter_increments() {
        let s = source();
        let _ = s.submit(&params(&[]));
        let _ = s.submit(&params(&[]));
        assert_eq!(s.probe_count(), 2);
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let s = source().with_failure_rate(1.0);
        let page = s.submit(&params(&[("from", "Chicago")]));
        assert!(page.contains("Internal Server Error"));
        let s2 = source().with_failure_rate(0.0);
        let page2 = s2.submit(&params(&[("from", "Chicago")]));
        assert!(!page2.contains("Internal Server Error"));
    }

    #[test]
    fn partial_failure_rate_hits_some_probes() {
        let s = source().with_failure_rate(0.5);
        let mut failures = 0;
        for i in 0..40 {
            let page = s.submit(&params(&[("from", &format!("city{i}"))]));
            if page.contains("Internal Server Error") {
                failures += 1;
            }
        }
        assert!(failures > 5 && failures < 35, "failures = {failures}");
    }

    #[test]
    fn transient_plan_faults_clear_on_a_later_attempt() {
        let s = source().with_fault_plan(FaultPlan::transient_only(7, 0.6));
        let vals = (0..50).map(|i| params(&[("from", &format!("city{i}"))]));
        let mut cleared = 0;
        for v in vals {
            if s.try_submit_attempt(&v, 0).is_err() {
                // a transient fault must eventually succeed on some retry
                let ok = (1..8).any(|a| s.try_submit_attempt(&v, a).is_ok());
                assert!(ok, "transient fault never cleared for {v:?}");
                cleared += 1;
            }
        }
        assert!(cleared > 5, "rate 0.6 injected only {cleared}/50");
    }

    #[test]
    fn permanent_plan_faults_never_clear() {
        let s = source().with_fault_plan(FaultPlan::permanent_only(1.0));
        let v = params(&[("from", "Chicago")]);
        for a in 0..5 {
            assert!(s.try_submit_attempt(&v, a).is_err(), "attempt {a}");
        }
    }

    #[test]
    fn permanent_plan_matches_legacy_rate_draw() {
        // with_failure_rate and permanent_only(rate) must fail the exact
        // same submissions — the legacy draw is a property of the request
        let legacy = source().with_failure_rate(0.5);
        let plan = source().with_fault_plan(FaultPlan::permanent_only(0.5));
        for i in 0..40 {
            let v = params(&[("from", &format!("city{i}"))]);
            assert_eq!(
                legacy.try_submit(&v).is_err(),
                plan.try_submit(&v).is_err(),
                "probe {i} diverged"
            );
        }
    }

    #[test]
    fn plan_injection_bumps_fault_counter_but_legacy_does_not() {
        let before = webiq_trace::snapshot();
        let legacy = source().with_failure_rate(1.0);
        let _ = legacy.try_submit(&params(&[("from", "Chicago")]));
        let mid = webiq_trace::snapshot();
        assert_eq!(mid.diff(&before).get(Counter::FaultInjected), 0);
        let plan = source().with_fault_plan(FaultPlan::permanent_only(1.0));
        let _ = plan.try_submit(&params(&[("from", "Chicago")]));
        let d = webiq_trace::snapshot().diff(&mid);
        assert_eq!(d.get(Counter::FaultInjected), 1);
        assert_eq!(d.get(Counter::ProbeServerError), 1);
    }
}
