//! Error type for the Deep-Web source simulator.
//!
//! [`DeepError`] is the structured counterpart of the HTML error pages a
//! real CGI endpoint would serve. `DeepSource::try_submit` returns it so
//! programmatic callers (the probing loop in `webiq-core`) can branch on
//! the failure kind without sniffing response markup; `DeepSource::submit`
//! renders it back into the page a browser would have shown.

use std::fmt;

/// A failed form submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeepError {
    /// The (injected) backend failure: a 500 page.
    ServerError,
    /// A required form field was left empty.
    MissingRequired {
        /// Name of the missing field.
        field: String,
    },
    /// A value outside an enumerated (`<select>`-backed) domain.
    InvalidValue {
        /// Name of the rejected field.
        field: String,
    },
}

impl fmt::Display for DeepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepError::ServerError => write!(f, "the source answered with a server error"),
            DeepError::MissingRequired { field } => {
                write!(f, "required field '{field}' was left empty")
            }
            DeepError::InvalidValue { field } => {
                write!(
                    f,
                    "value rejected by the pre-defined domain of field '{field}'"
                )
            }
        }
    }
}

impl std::error::Error for DeepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(
            DeepError::ServerError.to_string(),
            "the source answered with a server error"
        );
        assert_eq!(
            DeepError::MissingRequired { field: "q".into() }.to_string(),
            "required field 'q' was left empty"
        );
    }
}
