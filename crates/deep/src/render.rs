//! HTML response-page rendering for simulated Deep-Web sources.
//!
//! Sources answer probing queries with real HTML pages — a result listing,
//! a "no results" page, or an error page — so the Attr-Deep response
//! analyser exercises the same parse-and-heuristics path it would against
//! live sources.

use webiq_html::entities;

use crate::record::Record;

/// Render a result-listing page with one table row per record.
pub fn results_page(source_name: &str, records: &[&Record]) -> String {
    let mut html = String::with_capacity(256 + records.len() * 128);
    html.push_str("<html><head><title>");
    html.push_str(&entities::encode(source_name));
    html.push_str(" - Search Results</title></head><body>");
    html.push_str(&format!(
        "<h1>Search Results</h1><p class=\"summary\">Found {} matching results.</p>",
        records.len()
    ));
    html.push_str("<table class=\"results\">");
    if let Some(first) = records.first() {
        html.push_str("<tr>");
        for (name, _) in first.iter() {
            html.push_str(&format!("<th>{}</th>", entities::encode(name)));
        }
        html.push_str("</tr>");
    }
    for r in records {
        html.push_str("<tr class=\"result\">");
        for (_, value) in r.iter() {
            html.push_str(&format!("<td>{}</td>", entities::encode(value)));
        }
        html.push_str("</tr>");
    }
    html.push_str("</table></body></html>");
    html
}

/// Render a "no results" page.
pub fn no_results_page(source_name: &str) -> String {
    format!(
        "<html><head><title>{} - Search Results</title></head><body>\
         <h1>Search Results</h1>\
         <p>Sorry, no results were found matching your criteria.</p>\
         <p>Please modify your search and try again.</p>\
         </body></html>",
        entities::encode(source_name)
    )
}

/// Render an error page (invalid input, missing required field, …).
pub fn error_page(source_name: &str, message: &str) -> String {
    format!(
        "<html><head><title>{} - Error</title></head><body>\
         <h1>Error</h1>\
         <p class=\"error\">Error: {}</p>\
         </body></html>",
        entities::encode(source_name),
        entities::encode(message)
    )
}

/// Render a server-failure page (used for failure injection).
pub fn server_error_page() -> String {
    "<html><head><title>500 Internal Server Error</title></head><body>\
     <h1>Internal Server Error</h1>\
     <p>The server encountered an unexpected condition.</p>\
     </body></html>"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_page_contains_rows() {
        let r1 = Record::new([("from", "Chicago"), ("to", "Boston")]);
        let r2 = Record::new([("from", "Chicago"), ("to", "Denver")]);
        let html = results_page("AcmeAir", &[&r1, &r2]);
        assert!(html.contains("Found 2 matching results"));
        assert_eq!(html.matches("<tr class=\"result\">").count(), 2);
        assert!(html.contains("<td>Chicago</td>"));
    }

    #[test]
    fn results_page_escapes_values() {
        let r = Record::new([("title", "AT&T <Guide>")]);
        let html = results_page("Books", &[&r]);
        assert!(html.contains("AT&amp;T &lt;Guide&gt;"));
    }

    #[test]
    fn no_results_wording() {
        let html = no_results_page("AcmeAir");
        assert!(html.contains("no results"));
    }

    #[test]
    fn error_page_wording() {
        let html = error_page("AcmeAir", "invalid date");
        assert!(html.contains("Error: invalid date"));
    }

    #[test]
    fn empty_results_listing() {
        let html = results_page("X", &[]);
        assert!(html.contains("Found 0 matching results"));
    }
}
