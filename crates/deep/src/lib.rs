//! # webiq-deep — the Deep-Web source simulator
//!
//! Attr-Deep (§4 of the paper) validates borrowed instances by *probing*:
//! submit the source's form with attribute `A` set to candidate `x` and
//! the other attributes at their defaults, then analyze the response page.
//! This crate provides both sides of that interaction:
//!
//! - [`record`] — backend record stores with conjunctive, leniently-matched
//!   queries;
//! - [`source`] — the form handler: partial queries, enumerated-domain
//!   enforcement, required fields, deterministic failure injection;
//! - [`render`] — HTML result / no-results / error pages;
//! - [`analyze`] — the Raghavan–Garcia-Molina-style submission-success
//!   heuristics WebIQ runs over the returned page.
#![forbid(unsafe_code)]

pub mod analyze;
pub mod error;
pub mod record;
pub mod render;
pub mod source;

pub use analyze::{analyze_response, SubmissionOutcome};
pub use error::DeepError;
pub use record::{Record, RecordStore};
pub use source::{DeepSource, ParamDomain, SourceParam};
