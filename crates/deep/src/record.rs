//! Backend record stores for simulated Deep-Web sources.
//!
//! Each source sits on top of a relational-style store; probing queries
//! (§4) succeed or fail depending on whether the constrained values select
//! any records — which is exactly the signal Attr-Deep exploits: `from =
//! Chicago` selects flights, `from = January` selects nothing.

use std::collections::BTreeMap;

/// One backend record: attribute name → value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    fields: BTreeMap<String, String>,
}

impl Record {
    /// Build from `(name, value)` pairs.
    pub fn new<I, K, V>(fields: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        Record {
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// Value of a field.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields.get(name).map(String::as_str)
    }

    /// Set a field value.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.fields.insert(name.into(), value.into());
    }

    /// Iterate `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// How a constraint value is matched against a record value.
fn value_matches(record_value: &str, query_value: &str) -> bool {
    let rv = record_value.trim().to_ascii_lowercase();
    let qv = query_value.trim().to_ascii_lowercase();
    if qv.is_empty() {
        return true; // unconstrained
    }
    // exact (case-insensitive) or whole-word containment, mirroring how
    // real sources treat text boxes leniently but select values exactly.
    rv == qv || rv.split_whitespace().any(|w| w == qv) || rv.contains(&qv)
}

/// A store of records.
#[derive(Debug, Clone, Default)]
pub struct RecordStore {
    records: Vec<Record>,
}

impl RecordStore {
    /// Build from records.
    pub fn new(records: Vec<Record>) -> Self {
        RecordStore { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// All records matching every non-empty constraint. Constraints naming
    /// fields absent from a record never match it.
    pub fn query(&self, constraints: &BTreeMap<String, String>) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| {
                constraints.iter().all(|(name, value)| {
                    if value.trim().is_empty() {
                        return true;
                    }
                    match r.get(name) {
                        Some(rv) => value_matches(rv, value),
                        None => false,
                    }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights() -> RecordStore {
        RecordStore::new(vec![
            Record::new([("from", "Chicago"), ("to", "Boston"), ("airline", "United")]),
            Record::new([("from", "Chicago"), ("to", "Denver"), ("airline", "Delta")]),
            Record::new([("from", "Seattle"), ("to", "Boston"), ("airline", "Alaska")]),
        ])
    }

    fn constraints(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect()
    }

    #[test]
    fn exact_match() {
        let s = flights();
        assert_eq!(s.query(&constraints(&[("from", "Chicago")])).len(), 2);
        assert_eq!(s.query(&constraints(&[("from", "chicago")])).len(), 2);
    }

    #[test]
    fn conjunctive_constraints() {
        let s = flights();
        let got = s.query(&constraints(&[("from", "Chicago"), ("to", "Boston")]));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get("airline"), Some("United"));
    }

    #[test]
    fn ill_typed_value_selects_nothing() {
        let s = flights();
        assert!(s.query(&constraints(&[("from", "January")])).is_empty());
    }

    #[test]
    fn empty_values_are_unconstrained() {
        let s = flights();
        assert_eq!(
            s.query(&constraints(&[("from", ""), ("to", "  ")])).len(),
            3
        );
        assert_eq!(s.query(&constraints(&[])).len(), 3);
    }

    #[test]
    fn unknown_field_never_matches() {
        let s = flights();
        assert!(s.query(&constraints(&[("color", "red")])).is_empty());
    }

    #[test]
    fn substring_containment_for_text() {
        let s = RecordStore::new(vec![Record::new([(
            "title",
            "The Art of Computer Programming",
        )])]);
        assert_eq!(s.query(&constraints(&[("title", "computer")])).len(), 1);
        assert_eq!(s.query(&constraints(&[("title", "biology")])).len(), 0);
    }

    #[test]
    fn record_accessors() {
        let mut r = Record::new([("a", "1")]);
        assert_eq!(r.len(), 1);
        r.set("b", "2");
        assert_eq!(r.iter().count(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.get("b"), Some("2"));
        assert_eq!(r.get("c"), None);
    }
}
