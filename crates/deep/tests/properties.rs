//! Property-based tests for the Deep-Web source simulator.

use std::collections::BTreeMap;

use webiq_deep::{
    analyze_response, DeepSource, ParamDomain, Record, RecordStore, SourceParam, SubmissionOutcome,
};
use webiq_rng::prop;

fn source(values: &[String]) -> DeepSource {
    let mut store = RecordStore::default();
    for v in values {
        store.push(Record::new([("field", v.as_str())]));
    }
    DeepSource::new(
        "PropSource",
        vec![SourceParam {
            name: "field".into(),
            domain: ParamDomain::Free,
            required: false,
        }],
        store,
    )
}

/// Submitting arbitrary parameters never panics and always yields a
/// parseable page with a classifiable outcome.
#[test]
fn submit_total() {
    prop::cases(prop::CASES, |rng| {
        let values = prop::string_vec(rng, prop::alnum_space(), 1, 9, 1, 12);
        let key = rng.gen_string(prop::lower(), 1, 8);
        let value = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789<>&\" "),
            0,
            20,
        );
        let src = source(&values);
        let mut params = BTreeMap::new();
        params.insert(key, value);
        let page = src.submit(&params);
        let _ = analyze_response(&page);
        assert!(page.contains("<html>"));
    });
}

/// A value present in the store is always found; a value absent from
/// every record (as a substring, case-insensitively) never is.
#[test]
fn store_membership_decides_outcome() {
    prop::cases(prop::CASES, |rng| {
        let values = prop::string_vec(rng, prop::lower(), 1, 9, 3, 10);
        let probe_idx = rng.gen_range(0usize..10);
        let src = source(&values);
        let probe = values[probe_idx % values.len()].clone();
        let mut params = BTreeMap::new();
        params.insert("field".to_string(), probe);
        assert!(analyze_response(&src.submit(&params)).is_success());

        // "0" can never appear in an alphabetic store
        let mut params = BTreeMap::new();
        params.insert("field".to_string(), "0".to_string());
        assert_eq!(
            analyze_response(&src.submit(&params)),
            SubmissionOutcome::NoResults
        );
    });
}

/// Response analysis is total over arbitrary HTML soup.
#[test]
fn analyze_total() {
    prop::cases(prop::CASES, |rng| {
        let html = rng.gen_string(prop::any_char(), 0, 400);
        let _ = analyze_response(&html);
    });
}

/// Probe counting is exact.
#[test]
fn probe_count_exact() {
    prop::cases(prop::CASES, |rng| {
        let n = rng.gen_range(0usize..20);
        let src = source(&["abc".to_string()]);
        for _ in 0..n {
            let _ = src.submit(&BTreeMap::new());
        }
        assert_eq!(src.probe_count(), n as u64);
    });
}

/// Failure injection is deterministic: the same submission always gets
/// the same verdict.
#[test]
fn failure_injection_deterministic() {
    prop::cases(prop::CASES, |rng| {
        let value = rng.gen_string(prop::lower(), 1, 10);
        let rate = rng.gen_range(0.0f64..1.0);
        let a = source(&["abc".to_string()]).with_failure_rate(rate);
        let b = source(&["abc".to_string()]).with_failure_rate(rate);
        let mut params = BTreeMap::new();
        params.insert("field".to_string(), value);
        assert_eq!(a.submit(&params), b.submit(&params));
    });
}
