//! Property-based tests for the Deep-Web source simulator.

use std::collections::BTreeMap;

use proptest::prelude::*;
use webiq_deep::{
    analyze_response, DeepSource, ParamDomain, Record, RecordStore, SourceParam,
    SubmissionOutcome,
};

fn source(values: &[String]) -> DeepSource {
    let mut store = RecordStore::default();
    for v in values {
        store.push(Record::new([("field", v.as_str())]));
    }
    DeepSource::new(
        "PropSource",
        vec![SourceParam { name: "field".into(), domain: ParamDomain::Free, required: false }],
        store,
    )
}

proptest! {
    /// Submitting arbitrary parameters never panics and always yields a
    /// parseable page with a classifiable outcome.
    #[test]
    fn submit_total(
        values in proptest::collection::vec("[a-zA-Z0-9 ]{1,12}", 1..10),
        key in "[a-z]{1,8}",
        value in "[a-zA-Z0-9<>&\" ]{0,20}",
    ) {
        let src = source(&values);
        let mut params = BTreeMap::new();
        params.insert(key, value);
        let page = src.submit(&params);
        let _ = analyze_response(&page);
        prop_assert!(page.contains("<html>"));
    }

    /// A value present in the store is always found; a value absent from
    /// every record (as a substring, case-insensitively) never is.
    #[test]
    fn store_membership_decides_outcome(
        values in proptest::collection::vec("[a-z]{3,10}", 1..10),
        probe_idx in 0usize..10,
    ) {
        let src = source(&values);
        let probe = values[probe_idx % values.len()].clone();
        let mut params = BTreeMap::new();
        params.insert("field".to_string(), probe);
        prop_assert!(analyze_response(&src.submit(&params)).is_success());

        // "0" can never appear in an alphabetic store
        let mut params = BTreeMap::new();
        params.insert("field".to_string(), "0".to_string());
        prop_assert_eq!(analyze_response(&src.submit(&params)), SubmissionOutcome::NoResults);
    }

    /// Response analysis is total over arbitrary HTML soup.
    #[test]
    fn analyze_total(html in ".{0,400}") {
        let _ = analyze_response(&html);
    }

    /// Probe counting is exact.
    #[test]
    fn probe_count_exact(n in 0usize..20) {
        let src = source(&["abc".to_string()]);
        for _ in 0..n {
            let _ = src.submit(&BTreeMap::new());
        }
        prop_assert_eq!(src.probe_count(), n as u64);
    }

    /// Failure injection is deterministic: the same submission always gets
    /// the same verdict.
    #[test]
    fn failure_injection_deterministic(value in "[a-z]{1,10}", rate in 0.0f64..1.0) {
        let a = source(&["abc".to_string()]).with_failure_rate(rate);
        let b = source(&["abc".to_string()]).with_failure_rate(rate);
        let mut params = BTreeMap::new();
        params.insert("field".to_string(), value);
        prop_assert_eq!(a.submit(&params), b.submit(&params));
    }
}
