//! A miniature property-test harness.
//!
//! Replaces `proptest` for the workspace's `tests/properties.rs` suites:
//! each property runs a fixed number of deterministically seeded cases, so
//! failures reproduce exactly (the case seed is printed on panic via the
//! assertion message of the failing property itself).
//!
//! ```
//! use webiq_rng::prop;
//!
//! prop::cases(64, |rng| {
//!     let s = rng.gen_string(prop::alnum_space(), 0, 20);
//!     assert!(s.chars().count() <= 20);
//! });
//! ```

use crate::StdRng;

use std::sync::OnceLock;

/// Default number of cases per property.
pub const CASES: usize = 96;

/// Lowercase letters.
pub fn lower() -> &'static [char] {
    charset("abcdefghijklmnopqrstuvwxyz")
}

/// Lowercase letters plus space.
pub fn lower_space() -> &'static [char] {
    charset("abcdefghijklmnopqrstuvwxyz ")
}

/// Letters of both cases plus space.
pub fn alpha_space() -> &'static [char] {
    charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ")
}

/// Letters, digits, and space.
pub fn alnum_space() -> &'static [char] {
    charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ")
}

/// "Anything" — printable ASCII, whitespace/control, and multibyte
/// characters; the stand-in for proptest's `.` regex class.
pub fn any_char() -> &'static [char] {
    static CS: OnceLock<Vec<char>> = OnceLock::new();
    CS.get_or_init(|| {
        let mut v: Vec<char> = (' '..='~').collect();
        v.extend(['\t', '\n', '\r', '\u{0}', '\u{7f}']);
        v.extend([
            'é', 'ü', 'ß', 'ñ', 'Ω', '中', '文', 'δ', '¥', '€', '🚀', '\u{200b}',
        ]);
        v
    })
}

/// Interns an arbitrary charset string as a `'static` char slice.
pub fn charset(chars: &str) -> &'static [char] {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static [char]>>> = OnceLock::new();
    let map = INTERNED.get_or_init(|| Mutex::new(HashMap::new()));
    // Recover from poisoning: the intern table only grows with pure
    // insertions, so a panicking holder cannot leave it inconsistent.
    let mut map = map
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(cs) = map.get(chars) {
        return cs;
    }
    let leaked: &'static [char] = Box::leak(chars.chars().collect::<Vec<_>>().into_boxed_slice());
    map.insert(chars.to_string(), leaked);
    leaked
}

/// Run `n` deterministic cases of a property. Case `i` receives an RNG
/// seeded as a pure function of `i`, so a failing case replays by itself.
pub fn cases(n: usize, mut property: impl FnMut(&mut StdRng)) {
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(
            0xC0FF_EE00_0000_0000 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        property(&mut rng);
    }
}

/// A random `Vec<String>` with `len ∈ [min_len, max_len]`, each element a
/// string over `cs` with length in `[min_s, max_s]`.
pub fn string_vec(
    rng: &mut StdRng,
    cs: &[char],
    min_len: usize,
    max_len: usize,
    min_s: usize,
    max_s: usize,
) -> Vec<String> {
    let n = rng.gen_range(min_len..=max_len);
    (0..n).map(|_| rng.gen_string(cs, min_s, max_s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        cases(10, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        cases(10, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn string_vec_bounds() {
        cases(20, |rng| {
            let v = string_vec(rng, lower(), 1, 5, 2, 4);
            assert!((1..=5).contains(&v.len()));
            for s in &v {
                assert!((2..=4).contains(&s.chars().count()));
            }
        });
    }

    #[test]
    fn charsets_nonempty() {
        for cs in [
            lower(),
            lower_space(),
            alpha_space(),
            alnum_space(),
            any_char(),
        ] {
            assert!(!cs.is_empty());
        }
        assert_eq!(charset("xyz"), charset("xyz"));
    }
}
