//! Dependency-free deterministic randomness for the WebIQ workspace.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so everything that used to come from the `rand` crate lives here: a
//! seedable generator ([`StdRng`], xoshiro256** seeded via SplitMix64),
//! slice helpers ([`SliceRandom`]), and a tiny property-test harness
//! ([`prop`]) that replaces `proptest` for the `tests/properties.rs`
//! suites.
//!
//! Determinism is a hard requirement: every generated corpus, dataset and
//! record store in the repository is a pure function of its seed, and the
//! parallel-acquisition determinism guarantee (DESIGN.md) builds on that.
//! The generator is fully specified here and will never change behaviour
//! underneath a seed.
#![forbid(unsafe_code)]

pub mod prop;

/// SplitMix64 step — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable deterministic generator (xoshiro256**).
///
/// Named `StdRng` so call sites read exactly as they did under the `rand`
/// crate; the algorithm is our own fixed choice, not `rand`'s.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed the generator from a single `u64` (SplitMix64 expansion, the
    /// standard recommendation of the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // consume a draw anyway so the stream shape is stable
            let _ = self.next_u64();
            return true;
        }
        if p <= 0.0 {
            let _ = self.next_u64();
            return false;
        }
        self.next_f64() < p
    }

    /// Uniform draw from a range (`lo..hi` or `lo..=hi`), matching the
    /// `rand::Rng::gen_range` call shape.
    pub fn gen_range<R: RandRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A string of `len ∈ [min, max]` chars drawn uniformly from `charset`.
    pub fn gen_string(&mut self, charset: &[char], min: usize, max: usize) -> String {
        debug_assert!(!charset.is_empty() && min <= max);
        let len = self.gen_range(min..=max);
        (0..len)
            .map(|_| charset[self.gen_range(0..charset.len())])
            .collect()
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait RandRange {
    /// The element type produced.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl RandRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl RandRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // full-width inclusive range
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i32, i64);

impl RandRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// A uniformly chosen element (`None` on an empty slice).
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
    /// `amount` distinct elements (fewer when the slice is short), in
    /// selection order.
    fn choose_multiple<'a>(
        &'a self,
        rng: &mut StdRng,
        amount: usize,
    ) -> std::vec::IntoIter<&'a Self::Item>;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<'a>(&'a self, rng: &mut StdRng, amount: usize) -> std::vec::IntoIter<&'a T> {
        let amount = amount.min(self.len());
        // partial Fisher–Yates over an index vector
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2..=4);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads}");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(13);
        let items = [1, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*items.choose(&mut rng).expect("nonempty") - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(17);
        let items: Vec<usize> = (0..20).collect();
        for _ in 0..100 {
            let picked: Vec<usize> = items.choose_multiple(&mut rng, 8).copied().collect();
            assert_eq!(picked.len(), 8);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "duplicates in {picked:?}");
        }
        // amount beyond len is clamped
        assert_eq!(items.choose_multiple(&mut rng, 100).count(), 20);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut v: Vec<usize> = (0..30).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn gen_string_respects_charset_and_len() {
        let mut rng = StdRng::seed_from_u64(23);
        let charset: Vec<char> = "abc".chars().collect();
        for _ in 0..100 {
            let s = rng.gen_string(&charset, 2, 5);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }
}
