//! The decision-level regression gate: flipped verdicts between runs.
//!
//! Counter-level diffing (`webiq-obs`) says "ValidationAccepted fell by
//! 12"; this module says *which* decisions flipped and what evidence
//! moved them. Every decision is keyed by
//! `(kind, owning attribute, subject, occurrence)` — stable across
//! runs because the decision stream rides the merge-time logical clock
//! — and two runs are compared key-by-key:
//!
//! - a **flip** is a key whose verdict differs, or that exists in only
//!   one run (a match that became a no-match, or vice versa). Each flip
//!   names the largest evidence delta that moved it, e.g.
//!   `bayes_verify [0/3 author] "writer": accept -> reject; posterior
//!   0.81 -> 0.43`;
//! - **drift** is a key whose verdict held but whose evidence terms
//!   changed — reported for lineage, never gated.
//!
//! [`DecisionDiff::regressed`] drives the `webiq-report diff
//! --decisions` exit code: any flip beyond the configured allowance
//! (default zero) fails CI against the committed `WHY_BASELINE.jsonl`.

use std::collections::BTreeMap;

use webiq_trace::Event;

use crate::provenance::Provenance;

/// Stable identity of one decision across runs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DecisionKey {
    /// Decision family.
    pub kind: String,
    /// Owning attribute (nearest enclosing span subject).
    pub attr: String,
    /// Decision subject (instance, lender, pair).
    pub subject: String,
    /// Occurrence index when the same (kind, attr, subject) repeats.
    pub occ: u32,
}

impl DecisionKey {
    /// Render as `kind [attr] "subject"` (occurrence suffixed only when
    /// non-zero).
    pub fn display(&self) -> String {
        let mut s = format!("{} [{}] \"{}\"", self.kind, self.attr, self.subject);
        if self.occ > 0 {
            s.push_str(&format!(" #{}", self.occ));
        }
        s
    }
}

/// One run's record under a key: the verdict plus its evidence terms.
#[derive(Debug, Clone, PartialEq)]
struct Keyed {
    verdict: String,
    terms: BTreeMap<String, f64>,
}

/// The largest evidence change under a key.
#[derive(Debug, Clone, PartialEq)]
pub struct TermDelta {
    /// Term name.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
}

/// One flipped decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Flip {
    /// The decision's stable key.
    pub key: DecisionKey,
    /// Baseline verdict; `None` when the decision is new in candidate.
    pub base: Option<String>,
    /// Candidate verdict; `None` when the decision disappeared.
    pub cand: Option<String>,
    /// The largest evidence delta between the two records (only when
    /// the key exists on both sides and shares at least one term).
    pub dominant: Option<TermDelta>,
}

/// One evidence drift (verdict unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// The decision's stable key.
    pub key: DecisionKey,
    /// The shared verdict.
    pub verdict: String,
    /// The largest evidence delta.
    pub dominant: TermDelta,
}

/// The outcome of comparing two decision streams.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionDiff {
    /// Label of the baseline trace (usually its path).
    pub baseline_label: String,
    /// Label of the candidate trace.
    pub candidate_label: String,
    /// Decision count in the baseline.
    pub base_count: usize,
    /// Decision count in the candidate.
    pub cand_count: usize,
    /// Flipped decisions, in key order.
    pub flips: Vec<Flip>,
    /// Evidence drift under held verdicts, in key order.
    pub drift: Vec<Drift>,
    /// Flips tolerated before [`DecisionDiff::regressed`] (CI default 0).
    pub allowed_flips: u64,
}

impl DecisionDiff {
    /// True when the flip count exceeds the allowance — the CI gate.
    pub fn regressed(&self) -> bool {
        self.flips.len() as u64 > self.allowed_flips
    }

    /// True when the two decision streams are identical.
    pub fn is_zero(&self) -> bool {
        self.flips.is_empty() && self.drift.is_empty() && self.base_count == self.cand_count
    }

    /// Deterministic human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "decision diff\n  baseline:  {} ({} decisions)\n  candidate: {} ({} decisions)\n",
            self.baseline_label, self.base_count, self.candidate_label, self.cand_count
        );
        if self.is_zero() {
            out.push_str("\nzero deltas: decision streams are identical\nverdict: OK\n");
            return out;
        }
        if !self.flips.is_empty() {
            out.push_str("\nflipped decisions:\n");
            for f in &self.flips {
                let verdicts = format!(
                    "{} -> {}",
                    f.base.as_deref().unwrap_or("absent"),
                    f.cand.as_deref().unwrap_or("absent")
                );
                match &f.dominant {
                    Some(d) => out.push_str(&format!(
                        "  {}: {verdicts}; {} {} -> {} (largest evidence delta)\n",
                        f.key.display(),
                        d.name,
                        d.base,
                        d.cand
                    )),
                    None => out.push_str(&format!("  {}: {verdicts}\n", f.key.display())),
                }
            }
        }
        if !self.drift.is_empty() {
            out.push_str("\nevidence drift (verdict held, not gated):\n");
            for d in &self.drift {
                out.push_str(&format!(
                    "  {}: {} held; {} {} -> {}\n",
                    d.key.display(),
                    d.verdict,
                    d.dominant.name,
                    d.dominant.base,
                    d.dominant.cand
                ));
            }
        }
        if self.regressed() {
            out.push_str(&format!(
                "\nverdict: REGRESSION ({} flipped decision{})\n",
                self.flips.len(),
                if self.flips.len() == 1 { "" } else { "s" }
            ));
        } else {
            out.push_str("\nverdict: OK (no decision flipped past the allowance)\n");
        }
        out
    }

    /// Deterministic machine-readable rendering (hand-rolled JSON, like
    /// the rest of the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"baseline\":{},\"candidate\":{},\"base_decisions\":{},\"cand_decisions\":{},\"regressed\":{},\"zero_deltas\":{}",
            json_str(&self.baseline_label),
            json_str(&self.candidate_label),
            self.base_count,
            self.cand_count,
            self.regressed(),
            self.is_zero()
        ));
        out.push_str(",\"flips\":[");
        for (i, f) in self.flips.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":{},\"attr\":{},\"subject\":{},\"occ\":{},\"base\":{},\"cand\":{},\"dominant\":{}}}",
                json_str(&f.key.kind),
                json_str(&f.key.attr),
                json_str(&f.key.subject),
                f.key.occ,
                json_opt_str(f.base.as_deref()),
                json_opt_str(f.cand.as_deref()),
                json_delta(f.dominant.as_ref()),
            ));
        }
        out.push_str("],\"drift\":[");
        for (i, d) in self.drift.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":{},\"attr\":{},\"subject\":{},\"occ\":{},\"verdict\":{},\"dominant\":{}}}",
                json_str(&d.key.kind),
                json_str(&d.key.attr),
                json_str(&d.key.subject),
                d.key.occ,
                json_str(&d.verdict),
                json_delta(Some(&d.dominant)),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_delta(d: Option<&TermDelta>) -> String {
    match d {
        Some(d) => format!(
            "{{\"name\":{},\"base\":{},\"cand\":{}}}",
            json_str(&d.name),
            d.base,
            d.cand
        ),
        None => "null".to_string(),
    }
}

fn json_opt_str(s: Option<&str>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Key every decision in an event stream.
fn index(events: &[Event]) -> BTreeMap<DecisionKey, Keyed> {
    let p = Provenance::from_events(events);
    let mut seen: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for d in p.decisions() {
        let attr = p.owner_attr(d);
        let occ_key = (d.kind.clone(), attr.clone(), d.subject.clone());
        let occ = seen.entry(occ_key).or_insert(0);
        out.insert(
            DecisionKey {
                kind: d.kind.clone(),
                attr,
                subject: d.subject.clone(),
                occ: *occ,
            },
            Keyed {
                verdict: d.verdict.clone(),
                terms: d.terms.iter().cloned().collect(),
            },
        );
        *occ += 1;
    }
    out
}

/// The largest absolute change among terms present on both sides
/// (ties broken by name order, so the result is deterministic).
fn dominant_delta(base: &BTreeMap<String, f64>, cand: &BTreeMap<String, f64>) -> Option<TermDelta> {
    let mut best: Option<TermDelta> = None;
    for (name, b) in base {
        let Some(c) = cand.get(name) else { continue };
        let delta = (c - b).abs();
        let beats = match &best {
            Some(cur) => delta > (cur.cand - cur.base).abs(),
            None => true,
        };
        if beats {
            best = Some(TermDelta {
                name: name.clone(),
                base: *b,
                cand: *c,
            });
        }
    }
    best
}

/// Compare two parsed decision streams. `allowed_flips` is the gate
/// allowance (0 in CI: any flip fails).
pub fn diff_decisions(
    baseline_label: &str,
    baseline: &[Event],
    candidate_label: &str,
    candidate: &[Event],
    allowed_flips: u64,
) -> DecisionDiff {
    let base = index(baseline);
    let cand = index(candidate);
    let mut flips = Vec::new();
    let mut drift = Vec::new();
    for (key, b) in &base {
        match cand.get(key) {
            Some(c) if c.verdict == b.verdict => {
                if c.terms != b.terms {
                    if let Some(d) = dominant_delta(&b.terms, &c.terms) {
                        drift.push(Drift {
                            key: key.clone(),
                            verdict: b.verdict.clone(),
                            dominant: d,
                        });
                    }
                }
            }
            Some(c) => flips.push(Flip {
                key: key.clone(),
                base: Some(b.verdict.clone()),
                cand: Some(c.verdict.clone()),
                dominant: dominant_delta(&b.terms, &c.terms),
            }),
            None => flips.push(Flip {
                key: key.clone(),
                base: Some(b.verdict.clone()),
                cand: None,
                dominant: None,
            }),
        }
    }
    for (key, c) in &cand {
        if !base.contains_key(key) {
            flips.push(Flip {
                key: key.clone(),
                base: None,
                cand: Some(c.verdict.clone()),
                dominant: None,
            });
        }
    }
    flips.sort_by(|a, b| a.key.cmp(&b.key));
    DecisionDiff {
        baseline_label: baseline_label.to_string(),
        candidate_label: candidate_label.to_string(),
        base_count: base.len(),
        cand_count: cand.len(),
        flips,
        drift,
        allowed_flips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(verdict: &str, posterior: f64) -> Vec<Event> {
        vec![
            Event::Open {
                seq: 0,
                id: 0,
                parent: None,
                name: "attribute".into(),
                attr: Some("0/3 author".into()),
            },
            Event::Decision {
                seq: 1,
                id: 0,
                kind: "bayes_verify".into(),
                subject: "writer".into(),
                verdict: verdict.into(),
                terms: vec![("posterior".into(), posterior), ("prior".into(), 0.6)],
            },
            Event::Close {
                seq: 2,
                id: 0,
                metrics: vec![],
                hists: vec![],
            },
        ]
    }

    #[test]
    fn identical_streams_are_zero() {
        let a = stream("accept", 0.81);
        let r = diff_decisions("a", &a, "b", &a, 0);
        assert!(r.is_zero());
        assert!(!r.regressed());
        assert!(r.render_text().contains("zero deltas"));
        assert!(r.to_json().contains("\"zero_deltas\":true"));
    }

    #[test]
    fn verdict_flip_names_pair_and_dominant_delta() {
        let r = diff_decisions(
            "a",
            &stream("accept", 0.81),
            "b",
            &stream("reject", 0.43),
            0,
        );
        assert!(r.regressed());
        assert_eq!(r.flips.len(), 1);
        let text = r.render_text();
        assert!(
            text.contains("bayes_verify [0/3 author] \"writer\": accept -> reject"),
            "{text}"
        );
        assert!(
            text.contains("posterior 0.81 -> 0.43 (largest evidence delta)"),
            "{text}"
        );
        assert!(text.contains("verdict: REGRESSION (1 flipped decision)"));
        assert!(r.to_json().contains("\"regressed\":true"));
        assert!(r.to_json().contains("\"name\":\"posterior\""));
    }

    #[test]
    fn presence_flips_are_caught_both_ways() {
        let full = stream("accept", 0.81);
        let empty: Vec<Event> = vec![
            full.first().cloned().unwrap_or(Event::Open {
                seq: 0,
                id: 0,
                parent: None,
                name: "attribute".into(),
                attr: None,
            }),
            Event::Close {
                seq: 1,
                id: 0,
                metrics: vec![],
                hists: vec![],
            },
        ];
        let gone = diff_decisions("a", &full, "b", &empty, 0);
        assert!(gone.regressed());
        assert!(gone.render_text().contains("accept -> absent"));
        let new = diff_decisions("a", &empty, "b", &full, 0);
        assert!(new.regressed());
        assert!(new.render_text().contains("absent -> accept"));
    }

    #[test]
    fn drift_reports_but_does_not_gate() {
        let r = diff_decisions(
            "a",
            &stream("accept", 0.81),
            "b",
            &stream("accept", 0.79),
            0,
        );
        assert!(!r.regressed());
        assert!(!r.is_zero());
        assert_eq!(r.drift.len(), 1);
        let text = r.render_text();
        assert!(text.contains("evidence drift"));
        assert!(text.contains("posterior 0.81 -> 0.79"));
        assert!(text.contains("verdict: OK"));
    }

    #[test]
    fn allowance_tolerates_flips() {
        let r = diff_decisions(
            "a",
            &stream("accept", 0.81),
            "b",
            &stream("reject", 0.43),
            1,
        );
        assert!(!r.regressed());
        assert!(r.render_text().contains("verdict: OK"));
    }

    #[test]
    fn repeated_subjects_pair_by_occurrence() {
        let mut a = stream("accept", 0.8);
        a.insert(
            2,
            Event::Decision {
                seq: 2,
                id: 0,
                kind: "bayes_verify".into(),
                subject: "writer".into(),
                verdict: "reject".into(),
                terms: vec![],
            },
        );
        let r = diff_decisions("a", &a, "b", &a, 0);
        assert!(r.is_zero(), "occurrence indices pair duplicates");
        // flipping only the second occurrence flips exactly one key
        let mut b = a.clone();
        if let Some(Event::Decision { verdict, .. }) = b.get_mut(2) {
            *verdict = "accept".into();
        }
        let r = diff_decisions("a", &a, "b", &b, 0);
        assert_eq!(r.flips.len(), 1);
        assert_eq!(r.flips.first().map(|f| f.key.occ), Some(1));
        assert!(r.render_text().contains("#1"));
    }
}
