//! # webiq-why — decision provenance and evidence lineage
//!
//! WebIQ's output is a chain of probabilistic judgments: PMI-scored
//! instance extraction, validation-Bayes acceptance, borrowed-instance
//! verification by form probing, and label/domain-similarity cluster
//! merges. The trace/obs/prof stack says how *fast* and how *often*
//! those judgments ran; this crate records *why* each one went the way
//! it did.
//!
//! - [`record`] names the decision families and wraps
//!   [`webiq_trace::decision`] so every pipeline crate emits evidence
//!   records — name→value terms like the Bayes posterior or a probe
//!   success ratio — through the existing merge-time logical clock.
//!   Decision lines therefore share the trace's byte-identity guarantee
//!   across worker counts and reruns.
//! - [`provenance`] rebuilds the evidence-chain tree from a parsed
//!   trace: every decision anchored to its enclosing span, its owning
//!   attribute resolved, and the fault/degradation counters that were
//!   in play alongside it. `webiq-report explain <query>` renders it.
//! - [`diff`] is the decision-level regression gate behind
//!   `webiq-report diff --decisions`: it keys every decision by
//!   (kind, attribute, subject), flags *flipped* verdicts between two
//!   runs, and names the largest evidence delta that moved each flip.
//!
//! The crate is dependency-free (webiq-trace only) and panic-free.
#![forbid(unsafe_code)]

pub mod diff;
pub mod provenance;
pub mod record;

pub use diff::{diff_decisions, DecisionDiff, DecisionKey, Drift, Flip, TermDelta};
pub use provenance::{DecisionRecord, Provenance, SpanNode};
