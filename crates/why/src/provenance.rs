//! The evidence-chain tree: decisions anchored in the span hierarchy.
//!
//! [`Provenance::from_events`] rebuilds, from a parsed JSONL trace, the
//! span tree the tracer emitted and attaches every decision to its
//! enclosing span. From there a decision's full lineage is available:
//! the chain of spans above it (acquisition scope → attribute item →
//! stage span), the *owning attribute* (the nearest ancestor span with
//! a subject, used as the diff key), and the fault/degradation counters
//! that were live around it — so an explain rendering can say not just
//! "posterior 0.81 > 0.5" but also "while 2 faults were injected and
//! the attribute degraded to statistics-only validation".
//!
//! [`Provenance::explain`] renders the tree for every decision whose
//! subject, owning attribute, or kind matches a query string — the
//! engine behind `webiq-report explain <pair|attr|cluster>`. Output is
//! deterministic: decisions in logical-clock order, floats in the same
//! shortest-roundtrip encoding the wire format uses.

use std::collections::BTreeMap;

use webiq_trace::{Counter, Event};

/// One span reconstructed from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Global span id.
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Stage name (`"acquire"`, `"attribute"`, `"verify"`, ...).
    pub name: String,
    /// Free-form subject (domain, attribute label), if any.
    pub attr: Option<String>,
    /// Counter deltas from the span's close event (empty until closed).
    pub metrics: Vec<(Counter, u64)>,
}

/// One decision reconstructed from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Logical-clock position.
    pub seq: u64,
    /// Enclosing span id.
    pub span: u64,
    /// Decision family (see [`crate::record`]).
    pub kind: String,
    /// What was decided about.
    pub subject: String,
    /// The outcome.
    pub verdict: String,
    /// Evidence terms in recording order.
    pub terms: Vec<(String, f64)>,
}

/// A trace rebuilt into spans plus the decisions recorded inside them.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    spans: BTreeMap<u64, SpanNode>,
    decisions: Vec<DecisionRecord>,
}

impl Provenance {
    /// Rebuild the tree from a parsed event stream. Unknown span ids
    /// (a truncated trace) degrade gracefully: decisions keep their
    /// anchor id and simply have an empty chain.
    pub fn from_events(events: &[Event]) -> Provenance {
        let mut p = Provenance::default();
        for e in events {
            match e {
                Event::Open {
                    id,
                    parent,
                    name,
                    attr,
                    ..
                } => {
                    p.spans.insert(
                        *id,
                        SpanNode {
                            id: *id,
                            parent: *parent,
                            name: name.clone(),
                            attr: attr.clone(),
                            metrics: Vec::new(),
                        },
                    );
                }
                Event::Close { id, metrics, .. } => {
                    if let Some(s) = p.spans.get_mut(id) {
                        s.metrics = metrics.clone();
                    }
                }
                Event::Decision {
                    seq,
                    id,
                    kind,
                    subject,
                    verdict,
                    terms,
                } => {
                    p.decisions.push(DecisionRecord {
                        seq: *seq,
                        span: *id,
                        kind: kind.clone(),
                        subject: subject.clone(),
                        verdict: verdict.clone(),
                        terms: terms.clone(),
                    });
                }
            }
        }
        p
    }

    /// All decisions, in logical-clock order.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Look up a span by id.
    pub fn span(&self, id: u64) -> Option<&SpanNode> {
        self.spans.get(&id)
    }

    /// The ancestor chain of `d`'s enclosing span, root-first (walks
    /// parents; bounded by the span count so a malformed trace with a
    /// parent cycle cannot loop).
    pub fn chain(&self, d: &DecisionRecord) -> Vec<&SpanNode> {
        let mut chain = Vec::new();
        let mut cur = self.spans.get(&d.span);
        let mut budget = self.spans.len();
        while let Some(s) = cur {
            chain.push(s);
            if budget == 0 {
                break;
            }
            budget -= 1;
            cur = s.parent.and_then(|pid| self.spans.get(&pid));
        }
        chain.reverse();
        chain
    }

    /// The decision's owning attribute: the subject of the nearest
    /// enclosing span that has one (the `attribute` item span in an
    /// acquisition trace). Empty when no ancestor carries a subject.
    pub fn owner_attr(&self, d: &DecisionRecord) -> String {
        self.chain(d)
            .iter()
            .rev()
            .find_map(|s| s.attr.clone())
            .unwrap_or_default()
    }

    /// Fault/degradation counters live around the decision: every
    /// `fault_*` counter from the closes of its ancestor chain, summed
    /// by name and sorted for deterministic rendering.
    pub fn fault_context(&self, d: &DecisionRecord) -> Vec<(&'static str, u64)> {
        let mut acc: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in self.chain(d) {
            for (c, v) in &s.metrics {
                let name = c.name();
                if name.starts_with("fault_") {
                    *acc.entry(name).or_insert(0) += v;
                }
            }
        }
        acc.into_iter().collect()
    }

    /// Decisions whose subject, owning attribute, or kind contains
    /// `query` (case-insensitive).
    pub fn matching(&self, query: &str) -> Vec<&DecisionRecord> {
        let q = query.to_ascii_lowercase();
        self.decisions
            .iter()
            .filter(|d| {
                q.is_empty()
                    || d.subject.to_ascii_lowercase().contains(&q)
                    || d.kind.to_ascii_lowercase().contains(&q)
                    || self.owner_attr(d).to_ascii_lowercase().contains(&q)
            })
            .collect()
    }

    /// Render the evidence-chain tree for every decision matching
    /// `query`. Deterministic text: logical-clock order, wire-format
    /// float encoding.
    pub fn explain(&self, query: &str) -> String {
        let matches = self.matching(query);
        let mut out = format!(
            "explain \"{query}\" — {} matching decision{} (of {})\n",
            matches.len(),
            if matches.len() == 1 { "" } else { "s" },
            self.decisions.len()
        );
        for d in matches {
            out.push_str(&format!(
                "\n[seq {}] {} \"{}\" -> {}\n",
                d.seq, d.kind, d.subject, d.verdict
            ));
            let chain = self.chain(d);
            if chain.is_empty() {
                out.push_str("  at: (span missing from trace)\n");
            } else {
                let path: Vec<String> = chain
                    .iter()
                    .map(|s| match &s.attr {
                        Some(a) => format!("{} \"{}\"", s.name, a),
                        None => s.name.clone(),
                    })
                    .collect();
                out.push_str(&format!("  at: {}\n", path.join(" > ")));
            }
            if d.terms.is_empty() {
                out.push_str("  evidence: none recorded\n");
            } else {
                out.push_str("  evidence:\n");
                for (k, v) in &d.terms {
                    out.push_str(&format!("    {k:<20} {v}\n"));
                }
            }
            let faults = self.fault_context(d);
            if faults.is_empty() {
                out.push_str("  faults: none\n");
            } else {
                let parts: Vec<String> = faults.iter().map(|(k, v)| format!("{k} {v}")).collect();
                out.push_str(&format!("  faults: {}\n", parts.join(", ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Vec<Event> {
        vec![
            Event::Open {
                seq: 0,
                id: 0,
                parent: None,
                name: "acquire".into(),
                attr: Some("book".into()),
            },
            Event::Open {
                seq: 1,
                id: 1,
                parent: Some(0),
                name: "attribute".into(),
                attr: Some("0/3 author".into()),
            },
            Event::Open {
                seq: 2,
                id: 2,
                parent: Some(1),
                name: "verify".into(),
                attr: None,
            },
            Event::Decision {
                seq: 3,
                id: 2,
                kind: "instance_validate".into(),
                subject: "tolkien".into(),
                verdict: "accept".into(),
                terms: vec![("pmi".into(), 0.25), ("joint".into(), 17.0)],
            },
            Event::Close {
                seq: 4,
                id: 2,
                metrics: vec![(Counter::ValidationAccepted, 1)],
                hists: vec![],
            },
            Event::Close {
                seq: 5,
                id: 1,
                metrics: vec![
                    (Counter::ValidationAccepted, 1),
                    (Counter::FaultInjected, 2),
                ],
                hists: vec![],
            },
            Event::Close {
                seq: 6,
                id: 0,
                metrics: vec![(Counter::FaultInjected, 2)],
                hists: vec![],
            },
        ]
    }

    #[test]
    fn chains_owner_and_faults_resolve() {
        let p = Provenance::from_events(&fixture());
        assert_eq!(p.decisions().len(), 1);
        let d = &p.decisions()[0];
        let chain: Vec<&str> = p.chain(d).iter().map(|s| s.name.as_str()).collect();
        assert_eq!(chain, vec!["acquire", "attribute", "verify"]);
        assert_eq!(p.owner_attr(d), "0/3 author");
        // fault_injected appears on two ancestor closes: summed
        assert_eq!(p.fault_context(d), vec![("fault_injected", 4)]);
    }

    #[test]
    fn explain_renders_matching_decisions_deterministically() {
        let p = Provenance::from_events(&fixture());
        let text = p.explain("author");
        assert!(text.contains("1 matching decision (of 1)"), "{text}");
        assert!(text.contains("instance_validate \"tolkien\" -> accept"));
        assert!(text.contains("acquire \"book\" > attribute \"0/3 author\" > verify"));
        assert!(text.contains("pmi"));
        assert!(text.contains("0.25"));
        assert!(text.contains("faults: fault_injected 4"));
        assert_eq!(text, p.explain("author"), "rendering is deterministic");
        // a query that matches nothing still renders a header
        assert!(p.explain("nope").contains("0 matching decisions (of 1)"));
    }

    #[test]
    fn orphan_decisions_degrade_gracefully() {
        let events = vec![Event::Decision {
            seq: 0,
            id: 99,
            kind: "cluster_merge".into(),
            subject: "(a, b)".into(),
            verdict: "merge".into(),
            terms: vec![],
        }];
        let p = Provenance::from_events(&events);
        let d = &p.decisions()[0];
        assert!(p.chain(d).is_empty());
        assert_eq!(p.owner_attr(d), "");
        assert!(p.explain("").contains("span missing from trace"));
    }
}
