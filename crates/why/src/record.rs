//! Decision families and their recording wrappers.
//!
//! Each wrapper is a thin, typed front for [`webiq_trace::decision`]:
//! it fixes the `kind` string, maps the boolean outcome to the family's
//! verdict vocabulary, and passes the evidence terms through. Recording
//! is ambient — a no-op unless the calling thread is inside a traced
//! work item — so instrumented call sites cost one thread-local borrow
//! when tracing is off (bounded by the `why_overhead` bench).
//!
//! The four match-relevant families, in pipeline order:
//!
//! | kind                | verdicts          | evidence terms                      |
//! |---------------------|-------------------|-------------------------------------|
//! | `instance_validate` | accept / reject   | per-phrase joint/marginal hits, PMI |
//! | `bayes_verify`      | accept / reject   | posterior, prior, per-feature terms |
//! | `probe_verify`      | accept / reject   | probes, successes, ratio, threshold |
//! | `borrow_reuse`      | reuse / skip      | best domain similarity              |
//! | `cluster_merge`     | merge             | score, label_sim, dom_sim, α, β     |

/// An extracted instance kept or dropped by search-engine validation.
pub const INSTANCE_VALIDATE: &str = "instance_validate";
/// A borrowed candidate accepted or rejected by the validation
/// classifier (naive Bayes over thresholded validation features).
pub const BAYES_VERIFY: &str = "bayes_verify";
/// A lender's instance set accepted or rejected by live form probing.
pub const PROBE_VERIFY: &str = "probe_verify";
/// A lender reused (domain already accepted) or skipped (domain already
/// failed) without probing.
pub const BORROW_REUSE: &str = "borrow_reuse";
/// Two attribute clusters merged during interface matching.
pub const CLUSTER_MERGE: &str = "cluster_merge";

/// Positive verdict shared by the accept/reject families.
pub const ACCEPT: &str = "accept";
/// Negative verdict shared by the accept/reject families.
pub const REJECT: &str = "reject";
/// `borrow_reuse` verdict: lender taken on prior acceptance.
pub const REUSE: &str = "reuse";
/// `borrow_reuse` verdict: lender skipped on prior failure.
pub const SKIP: &str = "skip";
/// `cluster_merge` verdict: the pair was merged.
pub const MERGE: &str = "merge";

fn accept_verdict(accept: bool) -> &'static str {
    if accept {
        ACCEPT
    } else {
        REJECT
    }
}

/// Record one instance-validation decision: `candidate` kept or dropped
/// with the PMI scores and hit counts behind it.
pub fn instance_validate(candidate: &str, accept: bool, terms: &[(&str, f64)]) {
    webiq_trace::decision(INSTANCE_VALIDATE, candidate, accept_verdict(accept), terms);
}

/// Record one validation-classifier decision: borrowed `candidate`
/// accepted or rejected with the Bayes posterior and per-feature terms.
pub fn bayes_verify(candidate: &str, accept: bool, terms: &[(&str, f64)]) {
    webiq_trace::decision(BAYES_VERIFY, candidate, accept_verdict(accept), terms);
}

/// Record one probe-verification decision: `subject` (target attribute
/// plus lender reference) accepted or rejected with the probe outcome.
pub fn probe_verify(subject: &str, accept: bool, terms: &[(&str, f64)]) {
    webiq_trace::decision(PROBE_VERIFY, subject, accept_verdict(accept), terms);
}

/// Record a lender being reused or skipped on domain-similarity history
/// instead of being probed.
pub fn borrow_reuse(subject: &str, reused: bool, terms: &[(&str, f64)]) {
    webiq_trace::decision(
        BORROW_REUSE,
        subject,
        if reused { REUSE } else { SKIP },
        terms,
    );
}

/// Record one cluster merge: the representative attribute `pair` with
/// the label-sim/domain-sim/ICQ components behind the merge score.
pub fn cluster_merge(pair: &str, terms: &[(&str, f64)]) {
    webiq_trace::decision(CLUSTER_MERGE, pair, MERGE, terms);
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_trace::{Event, Tracer};

    #[test]
    fn wrappers_fix_kind_and_verdict() {
        let (tracer, handle) = Tracer::memory();
        let item = tracer.item("attribute", "0/0 Title");
        instance_validate("rome", true, &[("pmi", 0.2)]);
        bayes_verify("paris", false, &[("posterior", 0.1)]);
        probe_verify("Title <- 1/2 Name", true, &[("ratio", 0.5)]);
        borrow_reuse("1/2 Name", false, &[("dom_sim", 0.1)]);
        cluster_merge("(author, writer)", &[("score", 0.7)]);
        tracer.submit(item.finish());

        let got: Vec<(String, String)> = handle
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Decision { kind, verdict, .. } => Some((kind.clone(), verdict.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (INSTANCE_VALIDATE.to_string(), ACCEPT.to_string()),
                (BAYES_VERIFY.to_string(), REJECT.to_string()),
                (PROBE_VERIFY.to_string(), ACCEPT.to_string()),
                (BORROW_REUSE.to_string(), SKIP.to_string()),
                (CLUSTER_MERGE.to_string(), MERGE.to_string()),
            ]
        );
    }
}
