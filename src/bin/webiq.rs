//! The `webiq` command-line interface.
//!
//! ```text
//! webiq domains                                   list available domains
//! webiq generate --domain book --out DIR          export a benchmark to disk
//! webiq match --dataset DIR [--threshold T]       match an exported benchmark
//! webiq acquire --domain book [--components C]    run instance acquisition
//! ```
//!
//! All subcommands accept `--seed N` (default 0x1ce0) and are
//! deterministic in it.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use webiq::core::{Components, WebIQConfig};
use webiq::data::{export, gold, kb};
use webiq::matcher::{match_attributes, MatchAttribute, MatchConfig, PrF1};
use webiq::pipeline::DomainPipeline;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "domains" => cmd_domains(),
        "generate" => cmd_generate(rest),
        "match" => cmd_match(rest),
        "acquire" => cmd_acquire(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "usage:
  webiq domains
  webiq generate --domain <key> --out <dir> [--seed N]
  webiq match    --dataset <dir> [--threshold T]
  webiq acquire  --domain <key> [--seed N] [--components all|surface|surface-deep]";

/// Minimal flag parser: `--name value` pairs.
fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

fn seed_of(rest: &[String]) -> Result<u64, String> {
    match flag(rest, "--seed") {
        None => Ok(0x1ce0),
        Some(v) => v.parse().map_err(|_| format!("invalid --seed {v:?}")),
    }
}

fn cmd_domains() -> Result<(), String> {
    println!("paper domains:");
    for d in kb::all_domains() {
        println!(
            "  {:<12} ({} concepts, object: {})",
            d.key,
            d.concepts.len(),
            d.object
        );
    }
    println!("extension domains:");
    for d in kb::extended_domains() {
        if !kb::all_domains().iter().any(|p| p.key == d.key) {
            println!(
                "  {:<12} ({} concepts, object: {})",
                d.key,
                d.concepts.len(),
                d.object
            );
        }
    }
    Ok(())
}

fn cmd_generate(rest: &[String]) -> Result<(), String> {
    let domain = flag(rest, "--domain").ok_or("--domain is required")?;
    let out = PathBuf::from(flag(rest, "--out").ok_or("--out is required")?);
    let seed = seed_of(rest)?;
    let def = kb::domain(&domain).ok_or_else(|| format!("unknown domain {domain:?}"))?;
    let ds = webiq::data::generate_domain(
        def,
        &webiq::data::GenOptions {
            seed,
            ..webiq::data::GenOptions::default()
        },
    );
    export::export(&ds, &out).map_err(|e| e.to_string())?;
    println!(
        "exported {} interfaces ({} attributes) to {}",
        ds.interfaces.len(),
        ds.attr_count(),
        out.display()
    );
    Ok(())
}

fn cmd_match(rest: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(flag(rest, "--dataset").ok_or("--dataset is required")?);
    let threshold: f64 = match flag(rest, "--threshold") {
        None => 0.0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid --threshold {v:?}"))?,
    };
    let ds = export::import(&dir).map_err(|e| e.to_string())?;
    let attrs: Vec<MatchAttribute> = webiq::matcher::attributes_of(&ds);
    let result = match_attributes(&attrs, &MatchConfig::with_threshold(threshold));

    println!("clusters (≥2 attributes):");
    for cluster in &result.clusters {
        if cluster.len() < 2 {
            continue;
        }
        let labels: Vec<String> = cluster
            .iter()
            .map(|r| {
                let a = ds.attribute(*r).expect("cluster refs are valid");
                format!("{}:{}", ds.interfaces[r.0].site, a.label)
            })
            .collect();
        println!("  {}", labels.join(" ≡ "));
    }

    // evaluate when gold concepts survived the export
    if ds.attributes().any(|(_, a)| !a.concept.is_empty()) {
        let metrics: PrF1 = result.evaluate(&ds);
        println!(
            "\nvs gold: P={:.3} R={:.3} F1={:.1}%  ({} gold pairs)",
            metrics.precision,
            metrics.recall,
            metrics.f1_pct(),
            gold::gold_pairs(&ds).len()
        );
    }
    Ok(())
}

fn cmd_acquire(rest: &[String]) -> Result<(), String> {
    let domain = flag(rest, "--domain").ok_or("--domain is required")?;
    let seed = seed_of(rest)?;
    let components = match flag(rest, "--components").as_deref() {
        None | Some("all") => Components::ALL,
        Some("surface") => Components::SURFACE,
        Some("surface-deep") => Components::SURFACE_DEEP,
        Some(other) => return Err(format!("unknown --components {other:?}")),
    };
    let pipeline = DomainPipeline::build(&domain, seed).map_err(|e| e.to_string())?;
    let acq = pipeline
        .acquire(components, &WebIQConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "{}: {} instance-less attributes; Surface success {:.1}%, Surface+Deep {:.1}%, \
         {} pre-defined attributes enriched",
        domain,
        acq.report.no_inst_attrs,
        acq.report.surface_success_rate(),
        acq.report.surface_deep_success_rate(),
        acq.report.attr_surface_enriched,
    );
    for (r, values) in &acq.acquired {
        let a = pipeline
            .dataset
            .attribute(*r)
            .expect("acquired refs are valid");
        let preview: Vec<&str> = values.iter().take(6).map(String::as_str).collect();
        let more = values.len().saturating_sub(6);
        let suffix = if more > 0 {
            format!(" … +{more}")
        } else {
            String::new()
        };
        println!(
            "  {}:{:<22} += [{}{suffix}]",
            pipeline.dataset.interfaces[r.0].site,
            a.label,
            preview.join(", ")
        );
    }
    Ok(())
}
