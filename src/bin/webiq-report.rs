//! `webiq-report` — render JSONL traces, gate on trace diffs, explain
//! decisions, render profile attribution reports, and fsck persistent
//! knowledge stores.
//!
//! Five modes:
//!
//! ```text
//! webiq-report TRACE.jsonl [MORE.jsonl ...]
//! webiq-report diff BASELINE.jsonl CANDIDATE.jsonl [--config obs.toml] [--json]
//!                   [--decisions] [--prof-baseline FILE --prof-candidate FILE]
//! webiq-report explain TRACE.jsonl [QUERY]
//! webiq-report profile PROF_BASELINE.json
//! webiq-report store STORE_DIR
//! ```
//!
//! The render mode prints one per-stage funnel per root span (one per
//! traced acquisition, labelled by domain). `-` reads a trace from
//! stdin. A malformed trace line is a hard error naming the file and
//! line — a gate must not quietly skip the very evidence it gates on.
//!
//! The diff mode aggregates both runs and compares counters, funnel
//! stage rates, and histogram quantiles against the thresholds in
//! `--config` (defaults when absent; see `webiq_obs::DiffThresholds`).
//! With `--prof-baseline`/`--prof-candidate` (Prometheus text files or
//! `/metrics` scrapes) it also compares the `webiq_prof_*` counter
//! families, so lock-contention creep gates alongside trace changes.
//! Exit codes: `0` no regression, `1` regression detected, `2` usage or
//! I/O error — so CI can gate on the exit status alone.
//!
//! With `--decisions` the diff mode gates on the decision streams
//! instead: every recorded decision (instance validation, Bayes and
//! probe verification, borrow reuse, cluster merges) is keyed by kind,
//! owning attribute, and subject, and any *verdict flip* between
//! baseline and candidate fails the gate, naming the pair and the
//! largest evidence delta behind the flip. Evidence drift with the
//! verdict held is reported but never gates. The flip allowance comes
//! from `decision_flips` in `--config` (default 0).
//!
//! The explain mode renders a deterministic evidence-chain tree for
//! every decision matching QUERY (case-insensitive substring of the
//! decision subject, kind, or owning attribute; omitted = all):
//! the span chain it happened under, each evidence term, and any
//! fault/degradation counters observed on the enclosing spans.
//!
//! The profile mode renders the stage-tree attribution table and
//! Amdahl/USL scaling diagnosis from a `PROF_BASELINE.json` written by
//! `experiments profile`. The report is a pure function of the file:
//! byte-identical across reruns.
//!
//! The store mode fscks a `webiq-store` directory without mutating it:
//! both log streams are scanned frame by frame and the per-kind record
//! census, committed byte counts, and any unreadable tail are reported.
//! Exit codes: `0` clean, `1` recoverable damage found (a torn tail or
//! an orphan `snapshot.tmp` — the next `Store::open` repairs it), `2`
//! on I/O or usage errors.
#![forbid(unsafe_code)]

use std::io::Read;
use std::process::ExitCode;

use webiq::core::WebIqError;
use webiq::obs::{diff_events, parse_jsonl, profile, DiffThresholds, ObsError};
use webiq::prof::ProfSnapshot;
use webiq::trace::report;
use webiq::trace::Event;
use webiq::why::{diff_decisions, Provenance};

const USAGE: &str = "usage: webiq-report TRACE.jsonl [MORE.jsonl ...]
       webiq-report diff BASELINE.jsonl CANDIDATE.jsonl [--config FILE] [--json]
                    [--decisions] [--prof-baseline FILE --prof-candidate FILE]
       webiq-report explain TRACE.jsonl [QUERY]
       webiq-report profile PROF_BASELINE.json
       webiq-report store STORE_DIR
`-` reads a trace from stdin (at most one input may be `-`)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match args.split_first() {
        Some((first, rest)) if first == "diff" => run_diff(rest),
        Some((first, rest)) if first == "explain" => run_explain(rest),
        Some((first, rest)) if first == "profile" => run_profile(rest),
        Some((first, rest)) if first == "store" => run_store(rest),
        _ => run_render(&args),
    }
}

/// Read one input: a file path, or stdin for `-`.
fn read_input(path: &str) -> Result<String, ObsError> {
    let io_err = |e: std::io::Error| ObsError::Io {
        path: path.to_string(),
        detail: e.to_string(),
    };
    if path == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text).map_err(io_err)?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(io_err)
    }
}

/// Read and strictly parse one trace input.
fn load_trace(path: &str) -> Result<Vec<Event>, WebIqError> {
    let text = read_input(path)?;
    Ok(parse_jsonl(path, &text)?)
}

fn run_render(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in paths {
        let events = match load_trace(path) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("webiq-report: {e}");
                failed = true;
                continue;
            }
        };
        let groups = report::aggregate_by_root(&events);
        if groups.is_empty() {
            println!("{path}: no root spans found ({} events)", events.len());
            continue;
        }
        println!("== {path} ==");
        for (label, m) in &groups {
            print!("{}", report::render_funnel(label, m));
        }
        if groups.len() > 1 {
            print!(
                "{}",
                report::render_funnel("all runs", &report::aggregate(&events))
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut inputs: Vec<&String> = Vec::new();
    let mut config: Option<&String> = None;
    let mut prof_baseline: Option<&String> = None;
    let mut prof_candidate: Option<&String> = None;
    let mut json = false;
    let mut decisions = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--decisions" => decisions = true,
            "--config" => {
                let Some(path) = it.next() else {
                    eprintln!("webiq-report: --config needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                };
                config = Some(path);
            }
            "--prof-baseline" => {
                let Some(path) = it.next() else {
                    eprintln!("webiq-report: --prof-baseline needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                };
                prof_baseline = Some(path);
            }
            "--prof-candidate" => {
                let Some(path) = it.next() else {
                    eprintln!("webiq-report: --prof-candidate needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                };
                prof_candidate = Some(path);
            }
            other if other.starts_with("--") => {
                eprintln!("webiq-report: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => inputs.push(a),
        }
    }
    let prof = match (prof_baseline, prof_candidate) {
        (Some(b), Some(c)) => Some((b, c)),
        (None, None) => None,
        _ => {
            eprintln!(
                "webiq-report: --prof-baseline and --prof-candidate must be given together\n{USAGE}"
            );
            return ExitCode::from(2);
        }
    };
    let [baseline, candidate] = inputs.as_slice() else {
        eprintln!("webiq-report: diff needs exactly two traces\n{USAGE}");
        return ExitCode::from(2);
    };
    if baseline.as_str() == "-" && candidate.as_str() == "-" {
        eprintln!("webiq-report: at most one input may be `-`\n{USAGE}");
        return ExitCode::from(2);
    }
    let thresholds = match config {
        Some(path) => match DiffThresholds::from_file(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("webiq-report: {}", WebIqError::from(e));
                return ExitCode::from(2);
            }
        },
        None => DiffThresholds::default(),
    };
    let (base, cand) = match (load_trace(baseline), load_trace(candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("webiq-report: {e}");
            return ExitCode::from(2);
        }
    };
    if decisions {
        if prof.is_some() {
            eprintln!("webiq-report: --decisions does not take profile inputs\n{USAGE}");
            return ExitCode::from(2);
        }
        let d = diff_decisions(baseline, &base, candidate, &cand, thresholds.decision_flips);
        if json {
            println!("{}", d.to_json());
        } else {
            print!("{}", d.render_text());
        }
        return if d.regressed() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut r = diff_events(baseline, &base, candidate, &cand, &thresholds);
    if let Some((pb, pc)) = prof {
        // Prometheus text (a render_prom file or a /metrics scrape);
        // absent series parse as zero.
        let (pb_text, pc_text) = match (read_input(pb), read_input(pc)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("webiq-report: {}", WebIqError::from(e));
                return ExitCode::from(2);
            }
        };
        r = r.with_prof(
            &ProfSnapshot::from_prom_text(&pb_text),
            &ProfSnapshot::from_prom_text(&pc_text),
            &thresholds,
        );
    }
    if json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render_text());
    }
    if r.regressed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Render evidence-chain trees for the decisions matching a query.
fn run_explain(args: &[String]) -> ExitCode {
    let (path, query) = match args {
        [path] => (path, ""),
        [path, query] => (path, query.as_str()),
        _ => {
            eprintln!("webiq-report: explain needs TRACE.jsonl and an optional QUERY\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let events = match load_trace(path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("webiq-report: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", Provenance::from_events(&events).explain(query));
    ExitCode::SUCCESS
}

/// Fsck a persistent knowledge store: read-only scan of both log
/// streams, exit 0 clean / 1 recoverable damage.
fn run_store(args: &[String]) -> ExitCode {
    let [dir] = args else {
        eprintln!("webiq-report: store needs exactly one store directory\n{USAGE}");
        return ExitCode::from(2);
    };
    match webiq::store::fsck(std::path::Path::new(dir)) {
        Ok(report) => {
            print!("{}", report.render_text());
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("webiq-report: {}", WebIqError::from(e));
            ExitCode::from(2)
        }
    }
}

/// Render the attribution + scaling report from a profile baseline.
fn run_profile(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("webiq-report: profile needs exactly one PROF_BASELINE.json\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match read_input(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("webiq-report: {}", WebIqError::from(e));
            return ExitCode::from(2);
        }
    };
    match profile::parse_baseline(path, &text) {
        Ok(b) => {
            print!("{}", profile::render_profile(&b));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("webiq-report: {}", WebIqError::from(e));
            ExitCode::from(2)
        }
    }
}
