//! # WebIQ — learning from the Web to match Deep-Web query interfaces
//!
//! A production-quality Rust reproduction of *WebIQ: Learning from the Web
//! to Match Deep-Web Query Interfaces* (Wu, Doan, Yu — ICDE 2006),
//! including every substrate the paper depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`nlp`] | shallow NLP: Brill-style POS tagging, NP chunking, inflection, stemming |
//! | [`stats`] | discordancy tests, PMI, information gain, naive Bayes |
//! | [`html`] | HTML parsing and query-interface (form) extraction |
//! | [`web`] | the Surface-Web simulator (search engine + corpus generator) |
//! | [`deep`] | the Deep-Web source simulator (record stores, probing, response analysis) |
//! | [`data`] | five-domain knowledge bases and the ICQ-profile dataset generator |
//! | [`matcher`] | the IceQ-style interface matcher (label/domain similarity + clustering) |
//! | [`trace`] | deterministic structured tracing, pipeline metrics, run reports |
//! | [`why`] | decision provenance: evidence records, explain trees, decision-level diffs |
//! | [`prof`] | always-on performance attribution: lock/cache/worker counters, per-stage timers |
//! | [`obs`] | live `/metrics` exposition, windowed aggregation, trace-diff regression gating |
//! | [`fault`] | deterministic fault injection, virtual-time retry/backoff, circuit breaking, quota tracking |
//! | [`store`] | crash-safe persistent knowledge store: checksummed append log + snapshot, verified recovery |
//! | [`core`] | **WebIQ itself**: Surface, Attr-Surface, Attr-Deep, and the §5 strategy |
//!
//! The [`pipeline`] module wires everything together for one domain; see
//! `examples/quickstart.rs` for the three-line version.
#![forbid(unsafe_code)]

pub use webiq_core as core;
pub use webiq_data as data;
pub use webiq_deep as deep;
pub use webiq_fault as fault;
pub use webiq_html as html;
pub use webiq_match as matcher;
pub use webiq_nlp as nlp;
pub use webiq_obs as obs;
pub use webiq_prof as prof;
pub use webiq_stats as stats;
pub use webiq_store as store;
pub use webiq_trace as trace;
pub use webiq_web as web;
pub use webiq_why as why;

pub mod pipeline {
    //! End-to-end assembly: dataset + simulated Web + simulated sources +
    //! acquisition + matching for one domain.

    pub use webiq_core::WebIqError;
    use webiq_core::{acquire, Acquisition, Components, WebIQConfig};
    use webiq_data::records::{build_deep_source, RecordOptions};
    use webiq_data::{corpus, generate_domain, Dataset, DomainDef, GenOptions};
    use webiq_deep::DeepSource;
    use webiq_fault::{FaultConfig, FaultPlan};
    use webiq_match::{
        attributes_of, match_attributes, MatchAttribute, MatchConfig, MatchResult, PrF1,
    };
    use webiq_web::{gen, GenConfig, SearchEngine};

    /// The clustering threshold used for the paper's "+ thresholding"
    /// configuration, calibrated to our similarity scale the same way the
    /// paper calibrated τ = 0.1 to IceQ's (the average of the thresholds
    /// learned per domain).
    pub const THRESHOLD: f64 = 0.03;

    /// Everything needed to run WebIQ experiments over one domain.
    pub struct DomainPipeline {
        /// The domain's knowledge-base definition.
        pub def: &'static DomainDef,
        /// The generated 20-interface dataset.
        pub dataset: Dataset,
        /// The simulated Surface Web.
        pub engine: SearchEngine,
        /// One simulated Deep-Web source per interface.
        pub sources: Vec<DeepSource>,
    }

    impl DomainPipeline {
        /// Build the pipeline for `domain` (one of `airfare`, `auto`,
        /// `book`, `job`, `realestate`) with the given seed.
        ///
        /// # Errors
        ///
        /// Returns [`WebIqError::UnknownDomain`] when `domain` is not in
        /// the knowledge base, or any error of [`Self::from_def`].
        pub fn build(domain: &str, seed: u64) -> Result<Self, WebIqError> {
            let def = webiq_data::kb::domain(domain).ok_or_else(|| WebIqError::UnknownDomain {
                name: domain.to_string(),
            })?;
            Self::from_def(def, seed)
        }

        /// [`Self::build`], with the Deep-Web sources running the
        /// attempt-aware fault plan `fault` describes (when it is
        /// enabled) instead of the legacy attempt-blind 5% failure rate.
        /// Pass the same `fault` via [`WebIQConfig::fault`] to the
        /// acquisition call so the retry layer and the sources draw from
        /// one schedule — the `experiments chaos` harness does exactly
        /// this.
        ///
        /// # Errors
        ///
        /// Same as [`Self::build`].
        pub fn build_with_faults(
            domain: &str,
            seed: u64,
            fault: &FaultConfig,
        ) -> Result<Self, WebIqError> {
            let def = webiq_data::kb::domain(domain).ok_or_else(|| WebIqError::UnknownDomain {
                name: domain.to_string(),
            })?;
            let mut pipeline = Self::from_def(def, seed)?;
            if fault.enabled() {
                let plan = FaultPlan::from_config(fault);
                pipeline.sources = pipeline
                    .dataset
                    .interfaces
                    .iter()
                    .map(|i| {
                        build_deep_source(
                            def,
                            i,
                            &RecordOptions {
                                seed,
                                fault_plan: Some(plan.clone()),
                                ..RecordOptions::default()
                            },
                        )
                    })
                    .collect();
            }
            Ok(pipeline)
        }

        /// Build from a domain definition.
        ///
        /// # Errors
        ///
        /// Propagates the Surface-Web simulator's construction failure.
        pub fn from_def(def: &'static DomainDef, seed: u64) -> Result<Self, WebIqError> {
            let dataset = generate_domain(
                def,
                &GenOptions {
                    seed,
                    ..GenOptions::default()
                },
            );
            let engine = SearchEngine::new(gen::generate(
                &corpus::concept_specs(def),
                &GenConfig {
                    seed: seed ^ 0xc0ffee,
                    confuser_rate: 0.25,
                    ..GenConfig::default()
                },
            ))?;
            // Live 2006 sources were flaky; a twentieth of probes fail
            // with a server error, as they would against the real Deep Web.
            let sources = dataset
                .interfaces
                .iter()
                .map(|i| {
                    build_deep_source(
                        def,
                        i,
                        &RecordOptions {
                            seed,
                            failure_rate: 0.05,
                            ..RecordOptions::default()
                        },
                    )
                })
                .collect();
            Ok(DomainPipeline {
                def,
                dataset,
                engine,
                sources,
            })
        }

        /// Run instance acquisition with the chosen components.
        ///
        /// # Errors
        ///
        /// Propagates any [`WebIqError`] raised by the acquisition run.
        pub fn acquire(
            &self,
            components: Components,
            cfg: &WebIQConfig,
        ) -> Result<Acquisition, WebIqError> {
            acquire::acquire(
                &self.dataset,
                self.def,
                &self.engine,
                &self.sources,
                components,
                cfg,
            )
        }

        /// Run instance acquisition with the chosen components and a
        /// trace collector: `WebIQConfig::default()` with `tracer`
        /// installed. The tracer sees one deterministic `acquire` scope;
        /// read the funnel with [`webiq_trace::report::funnel`] or render
        /// the events with the `webiq-report` binary.
        ///
        /// # Errors
        ///
        /// Propagates any [`WebIqError`] raised by the acquisition run.
        pub fn acquire_traced(
            &self,
            components: Components,
            tracer: webiq_trace::Tracer,
        ) -> Result<Acquisition, WebIqError> {
            let cfg = WebIQConfig {
                tracer,
                ..WebIQConfig::default()
            };
            let acq = self.acquire(components, &cfg)?;
            cfg.tracer.flush();
            Ok(acq)
        }

        /// Matcher inputs from the raw dataset (no acquisition).
        pub fn baseline_attributes(&self) -> Vec<MatchAttribute> {
            attributes_of(&self.dataset)
        }

        /// Matcher inputs enriched with acquired instances.
        pub fn enriched_attributes(&self, acq: &Acquisition) -> Vec<MatchAttribute> {
            let mut attrs = attributes_of(&self.dataset);
            for a in &mut attrs {
                a.values.extend(acq.instances_for(a.r).iter().cloned());
            }
            attrs
        }

        /// Match a set of attributes and evaluate against gold.
        pub fn match_and_evaluate(
            &self,
            attrs: &[MatchAttribute],
            cfg: &MatchConfig,
        ) -> (MatchResult, PrF1) {
            let result = match_attributes(attrs, cfg);
            let metrics = result.evaluate(&self.dataset);
            (result, metrics)
        }

        /// [`Self::match_and_evaluate`], run inside a traced `matching`
        /// item so every `cluster_merge` decision lands in the trace
        /// through the merge-time logical clock. Matching is
        /// single-threaded and runs after acquisition, so the item's
        /// events are appended deterministically after the acquisition
        /// items at any worker count.
        pub fn match_and_evaluate_traced(
            &self,
            attrs: &[MatchAttribute],
            cfg: &MatchConfig,
            tracer: &webiq_trace::Tracer,
        ) -> (MatchResult, PrF1) {
            let item = tracer.item("matching", self.def.key);
            let result = match_attributes(attrs, cfg);
            tracer.submit(item.finish());
            let metrics = result.evaluate(&self.dataset);
            (result, metrics)
        }

        /// Baseline IceQ F-1 (no acquisition, τ = 0).
        pub fn baseline_f1(&self) -> PrF1 {
            self.match_and_evaluate(&self.baseline_attributes(), &MatchConfig::default())
                .1
        }

        /// IceQ + WebIQ F-1 for a component selection.
        ///
        /// # Errors
        ///
        /// Propagates any [`WebIqError`] raised by the acquisition run.
        pub fn webiq_f1(&self, components: Components, threshold: f64) -> Result<PrF1, WebIqError> {
            let acq = self.acquire(components, &WebIQConfig::default())?;
            let attrs = self.enriched_attributes(&acq);
            Ok(self
                .match_and_evaluate(&attrs, &MatchConfig::with_threshold(threshold))
                .1)
        }
    }
}
