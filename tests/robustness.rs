//! Robustness integration tests: source flakiness, corpus degradation,
//! and configuration extremes across the full pipeline.

use webiq::core::{acquire, Components, WebIQConfig};
use webiq::data::records::{build_deep_source, RecordOptions};
use webiq::data::{corpus, generate_domain, kb, GenOptions};
use webiq::deep::DeepSource;
use webiq::web::{gen, Corpus, GenConfig, SearchEngine};

fn dataset_and_engine(
    domain: &str,
) -> (
    &'static webiq::data::DomainDef,
    webiq::data::Dataset,
    SearchEngine,
) {
    let def = kb::domain(domain).expect("domain");
    let ds = generate_domain(def, &GenOptions::default());
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    (def, ds, engine)
}

fn sources_with_failure(
    def: &webiq::data::DomainDef,
    ds: &webiq::data::Dataset,
    rate: f64,
) -> Vec<DeepSource> {
    ds.interfaces
        .iter()
        .map(|i| {
            build_deep_source(
                def,
                i,
                &RecordOptions {
                    failure_rate: rate,
                    ..RecordOptions::default()
                },
            )
        })
        .collect()
}

/// Flaky sources degrade Attr-Deep gracefully: success rates fall
/// monotonically-ish with the failure rate but never panic, and at total
/// failure Deep borrowing contributes nothing beyond Surface.
#[test]
fn failure_injection_degrades_gracefully() {
    let (def, ds, engine) = dataset_and_engine("airfare");
    let cfg = WebIQConfig::default();

    let healthy = acquire::acquire(
        &ds,
        def,
        &engine,
        &sources_with_failure(def, &ds, 0.0),
        Components::SURFACE_DEEP,
        &cfg,
    )
    .expect("acquisition");
    let broken = acquire::acquire(
        &ds,
        def,
        &engine,
        &sources_with_failure(def, &ds, 1.0),
        Components::SURFACE_DEEP,
        &cfg,
    )
    .expect("acquisition");
    assert!(
        healthy.report.surface_deep_success_rate() > broken.report.surface_deep_success_rate(),
        "healthy {:.1}% vs broken {:.1}%",
        healthy.report.surface_deep_success_rate(),
        broken.report.surface_deep_success_rate()
    );
    // with every probe failing, deep adds nothing over surface
    assert_eq!(
        broken.report.surface_deep_success,
        broken.report.surface_success
    );
}

/// An empty Surface Web yields zero Surface acquisitions but the pipeline
/// still completes; Deep borrowing survives because probing needs no
/// search engine.
#[test]
fn empty_web_only_deep_borrowing_works() {
    let def = kb::domain("airfare").expect("domain");
    let ds = generate_domain(def, &GenOptions::default());
    let engine = SearchEngine::new(Corpus::default()).expect("engine");
    let sources = sources_with_failure(def, &ds, 0.0);
    let acq = acquire::acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::SURFACE_DEEP,
        &WebIQConfig::default(),
    )
    .expect("acquisition");
    assert_eq!(
        acq.report.surface_success, 0,
        "no Web, no Surface successes"
    );
    assert!(
        acq.report.surface_deep_success > 0,
        "Deep borrowing must still function: {:?}",
        acq.report
    );
}

/// k = 1 trivially succeeds more often than k = 10; k = 1000 never does.
#[test]
fn success_is_monotone_in_k() {
    let (def, ds, engine) = dataset_and_engine("book");
    let sources = sources_with_failure(def, &ds, 0.0);
    let rate = |k: usize| {
        let cfg = WebIQConfig {
            k,
            ..WebIQConfig::default()
        };
        acquire::acquire(&ds, def, &engine, &sources, Components::SURFACE, &cfg)
            .expect("acquisition")
            .report
            .surface_success_rate()
    };
    let r1 = rate(1);
    let r10 = rate(10);
    let r1000 = rate(1000);
    assert!(r1 >= r10, "k=1 {r1:.1}% vs k=10 {r10:.1}%");
    assert_eq!(r1000, 0.0, "nobody gathers a thousand instances");
}

/// Probing without any sources is a no-op, not a crash.
#[test]
fn no_sources_disables_attr_deep() {
    let (def, ds, engine) = dataset_and_engine("auto");
    let acq = acquire::acquire(
        &ds,
        def,
        &engine,
        &[],
        Components::SURFACE_DEEP,
        &WebIQConfig::default(),
    )
    .expect("acquisition");
    assert_eq!(acq.report.attr_deep_cost.probes, 0);
}

/// Acquired instances never include the empty string or absurdly long
/// artifacts (the outlier phase and plausibility filters at work).
#[test]
fn acquired_instances_are_clean() {
    let (def, ds, engine) = dataset_and_engine("realestate");
    let sources = sources_with_failure(def, &ds, 0.0);
    let acq = acquire::acquire(
        &ds,
        def,
        &engine,
        &sources,
        Components::ALL,
        &WebIQConfig::default(),
    )
    .expect("acquisition");
    for (r, values) in &acq.acquired {
        for v in values {
            assert!(!v.trim().is_empty(), "empty instance for {r:?}");
            assert!(v.len() <= 60, "overlong instance {v:?} for {r:?}");
        }
    }
}
