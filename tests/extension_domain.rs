//! The movie extension domain: evidence that the whole pipeline — dataset
//! generation, corpus generation, acquisition, matching — is
//! domain-agnostic. Not part of any paper artifact.

use webiq::core::Components;
use webiq::data::kb;
use webiq::pipeline::DomainPipeline;

#[test]
fn movie_domain_runs_end_to_end() {
    let p = DomainPipeline::build("movie", 0x1ce0).expect("movie is registered");
    assert_eq!(p.dataset.interfaces.len(), 20);
    let base = p.baseline_f1();
    let webiq = p.webiq_f1(Components::ALL, 0.0).expect("acquisition");
    assert!(base.f1 > 0.5, "baseline sane: {:.3}", base.f1);
    assert!(
        webiq.f1 >= base.f1 - 0.02,
        "WebIQ must not hurt the extension domain: {:.3} -> {:.3}",
        base.f1,
        webiq.f1
    );
}

#[test]
fn movie_domain_not_in_paper_experiments() {
    assert!(!kb::all_domains().iter().any(|d| d.key == "movie"));
}

#[test]
fn movie_surface_acquisition_finds_directors() {
    use webiq::core::{surface, DomainInfo, WebIQConfig};
    use webiq::data::corpus;
    use webiq::web::{gen, GenConfig, SearchEngine};

    let def = kb::domain("movie").expect("movie");
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let info = DomainInfo {
        object: def.object.to_string(),
        domain_terms: def.domain_terms.iter().map(|s| (*s).to_string()).collect(),
        sibling_terms: Vec::new(),
    };
    let found = surface::discover(&engine, "Director", &info, &WebIQConfig::default());
    assert!(
        !found.instances.is_empty(),
        "no directors discovered from the movie corpus"
    );
    for inst in found.texts() {
        assert!(
            kb::movie::DIRECTORS
                .iter()
                .any(|d| d.eq_ignore_ascii_case(&inst)),
            "{inst} is not a director"
        );
    }
}
