//! End-to-end tests of the `webiq` command-line interface, driving the
//! compiled binary the way a user would.

use std::process::Command;

fn webiq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_webiq"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn domains_lists_all_six() {
    let out = webiq(&["domains"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for key in ["airfare", "auto", "book", "job", "realestate", "movie"] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = webiq(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage"));
}

#[test]
fn unknown_command_fails() {
    let out = webiq(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn generate_then_match_roundtrip() {
    let dir = std::env::temp_dir().join(format!("webiq-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp path");

    let out = webiq(&[
        "generate", "--domain", "book", "--out", dir_s, "--seed", "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("exported 20 interfaces"));

    let out = webiq(&["match", "--dataset", dir_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains('≡'), "no clusters printed:\n{text}");
    assert!(text.contains("vs gold"), "no evaluation printed:\n{text}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn match_missing_dataset_fails_cleanly() {
    let out = webiq(&["match", "--dataset", "/nonexistent/webiq-ds"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error"));
}

#[test]
fn acquire_reports_success_rates() {
    let out = webiq(&["acquire", "--domain", "auto", "--components", "surface"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Surface success"), "{text}");
    assert!(text.contains("+="), "no acquisitions printed:\n{text}");
}

#[test]
fn invalid_seed_rejected() {
    let out = webiq(&["acquire", "--domain", "auto", "--seed", "banana"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid --seed"));
}
