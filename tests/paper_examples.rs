//! The paper's concrete worked examples, verified end to end across
//! crates.

use webiq::core::extract;
use webiq::core::patterns::{extraction_patterns, validation_phrases};
use webiq::nlp::{classify_label, LabelForm};
use webiq::stats::entropy::best_threshold;
use webiq::stats::NaiveBayes;

/// §1 / Fig. 2: the extraction query "departure cities such as" applied to
/// the Google snippet yields Boston, Chicago, and LAX.
#[test]
fn figure2_snippet_extraction() {
    let np = extract::primary_noun_phrase("Departure city").expect("noun phrase");
    let patterns = extraction_patterns(&np, "flight");
    let s1 = &patterns[0];
    assert_eq!(s1.cue, "departure cities such as");
    let snippet = "Our fare finder covers departure cities such as Boston, Chicago, and LAX \
                   with service on all major airlines.";
    let got = extract::completions(snippet, s1);
    assert_eq!(got, vec!["Boston", "Chicago", "LAX"]);
}

/// §2.1: "if the label L is a singular noun phrase, then form the query
/// '[plural form of L] such as'".
#[test]
fn section21_pluralized_cue_phrases() {
    for (label, cue) in [
        ("author", "authors such as"),
        ("Departure city", "departure cities such as"),
        ("Class of service", "classes of service such as"),
        ("make", "makes such as"),
    ] {
        let np = extract::primary_noun_phrase(label).expect(label);
        assert_eq!(extraction_patterns(&np, "x")[0].cue, cue);
    }
}

/// §2.1: labels of the forms the paper names analyze correctly.
#[test]
fn section21_label_forms() {
    assert!(matches!(
        classify_label("Departure city"),
        LabelForm::NounPhrase(_)
    ));
    assert!(matches!(
        classify_label("Type of job"),
        LabelForm::NounPhrase(_)
    ));
    assert!(matches!(
        classify_label("From"),
        LabelForm::PrepPhrase { .. }
    ));
    assert!(matches!(
        classify_label("From city"),
        LabelForm::PrepPhrase { .. }
    ));
    assert!(matches!(
        classify_label("Depart from"),
        LabelForm::VerbPhrase { .. }
    ));
    assert!(matches!(
        classify_label("First name or last name"),
        LabelForm::Conjunction(_)
    ));
}

/// §2.2: the validation query for label `make` and candidate `Honda` is
/// the proximity phrase "make honda"; cue-phrase validation uses
/// "makes such as honda".
#[test]
fn section22_validation_queries() {
    let np = extract::primary_noun_phrase("make").expect("np");
    let phrases = validation_phrases("make", Some(&np));
    assert_eq!(phrases[0], "make");
    assert!(phrases.contains(&"makes such as".to_string()));
}

/// Figure 5.f: threshold estimation from T₁ gives t₁ = .45 and t₂ = .075.
#[test]
fn figure5_thresholds() {
    let t1 = best_threshold(&[(0.2, false), (0.4, false), (0.5, true), (0.8, true)]);
    let t2 = best_threshold(&[(0.03, false), (0.05, false), (0.1, true), (0.3, true)]);
    assert!((t1 - 0.45).abs() < 1e-12);
    assert!((t2 - 0.075).abs() < 1e-12);
}

/// Figure 5.g–h: the probabilities estimated from T₂′ with Laplacean
/// smoothing, e.g. P(f₁=1|+) = (2+1)/(2+2) = 3/4.
#[test]
fn figure5_probabilities() {
    let t2_prime = vec![
        (vec![true, true], true),    // Delta
        (vec![true, true], true),    // United
        (vec![false, false], false), // Jan
        (vec![false, true], false),  // 1
    ];
    let nb = NaiveBayes::train(&t2_prime).expect("train");
    assert!((nb.prior_pos() - 0.5).abs() < 1e-12);
    assert!((nb.p_feature_true(0, true) - 0.75).abs() < 1e-12);
    assert!((nb.p_feature_true(0, false) - 0.25).abs() < 1e-12);
    assert!((nb.p_feature_true(1, true) - 0.75).abs() < 1e-12);
    assert!((nb.p_feature_true(1, false) - 0.5).abs() < 1e-12);
}

/// §2.1: the paper's fully-formatted Google query for the `author`
/// attribute of a bookstore schema.
#[test]
fn section21_google_query_format() {
    use webiq::core::{DomainInfo, WebIQConfig};
    let np = extract::primary_noun_phrase("author").expect("np");
    let pattern = &extraction_patterns(&np, "book")[0];
    let info = DomainInfo {
        object: "book".into(),
        domain_terms: vec!["book".into()],
        sibling_terms: Vec::new(),
    };
    let q = extract::build_query(pattern, &info, &WebIQConfig::default());
    assert_eq!(q, "\"authors such as\" +book");
}
