//! End-to-end tests of the `webiq-report` binary: funnel rendering,
//! the `diff` regression gate, stdin input, and error reporting. These
//! pin the contract the CI trace-regression step depends on — exact
//! exit codes and the wording the gate greps for.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use webiq::trace::{Counter, Event, HistKey, HistSet};

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_webiq-report"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// Run with `stdin_data` piped to the child's stdin.
fn report_stdin(args: &[&str], stdin_data: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_webiq-report"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(stdin_data.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A tiny synthetic trace: one root span whose close carries the given
/// validation counters and one probe-histogram observation.
fn trace_jsonl(accepted: u64, rejected: u64, probe_val: u64) -> String {
    let mut hist = HistSet::new();
    hist.observe(HistKey::ProbesPerAttr, probe_val);
    let events = [
        Event::Open {
            seq: 0,
            id: 0,
            parent: None,
            name: "acquire".into(),
            attr: Some("book".into()),
        },
        Event::Close {
            seq: 1,
            id: 0,
            metrics: vec![
                (Counter::AttrsTotal, 10),
                (Counter::ValidationAccepted, accepted),
                (Counter::ValidationRejected, rejected),
                (Counter::ProbesIssued, 40),
                (Counter::ProbeMatched, 30),
            ],
            hists: hist.nonzero(),
        },
    ];
    events.iter().fold(String::new(), |mut acc, e| {
        acc.push_str(&e.to_jsonl());
        acc.push('\n');
        acc
    })
}

/// A tiny decision-bearing trace: one acquire root, one attribute span,
/// and a `bayes_verify` decision with the given verdict and posterior.
fn decision_trace(verdict: &str, posterior: f64) -> String {
    let events = [
        Event::Open {
            seq: 0,
            id: 0,
            parent: None,
            name: "acquire".into(),
            attr: Some("book".into()),
        },
        Event::Open {
            seq: 1,
            id: 1,
            parent: Some(0),
            name: "attribute".into(),
            attr: Some("0/3 author".into()),
        },
        Event::Decision {
            seq: 2,
            id: 1,
            kind: "bayes_verify".into(),
            subject: "writer".into(),
            verdict: verdict.into(),
            terms: vec![("posterior".into(), posterior), ("prior_pos".into(), 0.5)],
        },
        Event::Close {
            seq: 3,
            id: 1,
            metrics: vec![],
            hists: vec![],
        },
        Event::Close {
            seq: 4,
            id: 0,
            metrics: vec![],
            hists: vec![],
        },
    ];
    events.iter().fold(String::new(), |mut acc, e| {
        acc.push_str(&e.to_jsonl());
        acc.push('\n');
        acc
    })
}

/// Write `contents` into a unique temp file and return its path.
fn temp_trace(tag: &str, contents: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("webiq-report-{}-{tag}.jsonl", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn path_str(p: &Path) -> &str {
    p.to_str().expect("utf-8 path")
}

#[test]
fn renders_funnel_from_trace_file() {
    let path = temp_trace("render", &trace_jsonl(75, 25, 3));
    let out = report(&[path_str(&path)]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("attrs"), "no funnel in:\n{text}");
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn diff_of_identical_runs_is_zero_and_exits_0() {
    let path = temp_trace("identical", &trace_jsonl(75, 25, 3));
    let out = report(&["diff", path_str(&path), path_str(&path)]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("zero deltas"), "{text}");
    assert!(text.contains("verdict: OK"), "{text}");
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn injected_acceptance_drop_exits_nonzero_and_names_the_stage() {
    // verify rate 0.75 -> 0.55: past the default 0.05 absolute drop.
    let base = temp_trace("base", &trace_jsonl(75, 25, 3));
    let cand = temp_trace("cand", &trace_jsonl(55, 45, 3));
    let out = report(&["diff", path_str(&base), path_str(&cand)]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("stage verify"), "{text}");
    assert!(text.contains("verdict: REGRESSION"), "{text}");
    std::fs::remove_file(&base).expect("cleanup");
    std::fs::remove_file(&cand).expect("cleanup");
}

#[test]
fn diff_json_output_carries_the_verdict() {
    let base = temp_trace("jbase", &trace_jsonl(75, 25, 3));
    let cand = temp_trace("jcand", &trace_jsonl(55, 45, 3));
    let out = report(&["diff", "--json", path_str(&base), path_str(&cand)]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"regressed\":true"), "{text}");
    assert!(text.contains("\"stage verify\""), "{text}");
    std::fs::remove_file(&base).expect("cleanup");
    std::fs::remove_file(&cand).expect("cleanup");
}

#[test]
fn dash_reads_the_trace_from_stdin() {
    let trace = trace_jsonl(75, 25, 3);
    let path = temp_trace("stdin", &trace);
    let out = report_stdin(&["diff", "-", path_str(&path)], &trace);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("zero deltas"), "{}", stdout(&out));

    // Render mode takes stdin too.
    let out = report_stdin(&["-"], &trace);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("attrs"), "{}", stdout(&out));

    // Two stdins cannot both be read.
    let out = report_stdin(&["diff", "-", "-"], &trace);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("one input may be"),
        "{}",
        stderr(&out)
    );
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn malformed_trace_reports_file_and_line() {
    let good = trace_jsonl(1, 1, 1);
    let first_line = good.lines().next().expect("fixture has lines");
    let path = temp_trace("bad", &format!("{first_line}\nnot json\n"));
    let out = report(&[path_str(&path)]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    let expected = format!("{}:2", path_str(&path));
    assert!(err.contains(&expected), "{err}");
    assert!(err.contains("not a valid trace event"), "{err}");

    // The diff gate reports the same error but exits 2 (gate could not
    // run — distinct from exit 1, a regression verdict).
    let ok = temp_trace("ok", &good);
    let out = report(&["diff", path_str(&ok), path_str(&path)]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains(&expected), "{}", stderr(&out));
    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(&ok).expect("cleanup");
}

#[test]
fn decisions_diff_of_identical_streams_exits_0() {
    let path = temp_trace("dident", &decision_trace("accept", 0.81));
    let out = report(&["diff", "--decisions", path_str(&path), path_str(&path)]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("zero deltas: decision streams are identical"),
        "{text}"
    );
    assert!(text.contains("verdict: OK"), "{text}");
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn injected_decision_flip_exits_1_naming_pair_and_dominant_delta() {
    // The verdict flips accept -> reject after the posterior collapses;
    // the gate must name the decision and the evidence term that moved
    // most. This wording is what the CI decision gate surfaces.
    let base = temp_trace("dbase", &decision_trace("accept", 0.81));
    let cand = temp_trace("dcand", &decision_trace("reject", 0.43));
    let out = report(&["diff", "--decisions", path_str(&base), path_str(&cand)]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("bayes_verify [0/3 author] \"writer\": accept -> reject"),
        "{text}"
    );
    assert!(
        text.contains("posterior 0.81 -> 0.43 (largest evidence delta)"),
        "{text}"
    );
    assert!(
        text.contains("verdict: REGRESSION (1 flipped decision)"),
        "{text}"
    );

    // JSON output carries the same verdict for tooling.
    let out = report(&[
        "diff",
        "--decisions",
        "--json",
        path_str(&base),
        path_str(&cand),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout(&out).contains("\"regressed\":true"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_file(&base).expect("cleanup");
    std::fs::remove_file(&cand).expect("cleanup");
}

#[test]
fn decisions_flip_allowance_comes_from_the_config() {
    let base = temp_trace("dabase", &decision_trace("accept", 0.81));
    let cand = temp_trace("dacand", &decision_trace("reject", 0.43));
    let cfg = std::env::temp_dir().join(format!("webiq-report-{}-flips.toml", std::process::id()));
    std::fs::write(&cfg, "[diff]\ndecision_flips = 1\n").expect("write config");
    let out = report(&[
        "diff",
        "--decisions",
        path_str(&base),
        path_str(&cand),
        "--config",
        cfg.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));
    assert!(
        stdout(&out).contains("verdict: OK (no decision flipped past the allowance)"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_file(&base).expect("cleanup");
    std::fs::remove_file(&cand).expect("cleanup");
    std::fs::remove_file(&cfg).expect("cleanup");
}

#[test]
fn explain_renders_the_evidence_chain() {
    let path = temp_trace("explain", &decision_trace("accept", 0.81));
    let out = report(&["explain", path_str(&path), "writer"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("bayes_verify \"writer\" -> accept"), "{text}");
    assert!(text.contains("acquire \"book\""), "{text}");
    assert!(text.contains("attribute \"0/3 author\""), "{text}");
    assert!(text.contains("posterior"), "{text}");

    // No query renders every decision; an unmatched query renders none.
    let out = report(&["explain", path_str(&path)]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("1 matching decision (of 1)"),
        "{}",
        stdout(&out)
    );
    let out = report(&["explain", path_str(&path), "no-such-subject"]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("0 matching decisions (of 1)"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn usage_errors_exit_2() {
    let out = report(&["diff"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"), "{}", stderr(&out));

    let out = report(&["diff", "a.jsonl"]);
    assert_eq!(out.status.code(), Some(2));

    let out = report(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"), "{}", stderr(&out));
}

#[test]
fn missing_input_file_fails_cleanly() {
    let out = report(&["/nonexistent/webiq-trace.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn config_file_thresholds_are_honoured() {
    // With rate_drop raised past the injected 0.20 drop, the same pair
    // of traces passes the gate.
    let base = temp_trace("cbase", &trace_jsonl(75, 25, 3));
    let cand = temp_trace("ccand", &trace_jsonl(55, 45, 3));
    let cfg = std::env::temp_dir().join(format!("webiq-report-{}-loose.toml", std::process::id()));
    std::fs::write(
        &cfg,
        "[diff]\nrate_drop = 0.5\ncounter_drop_pct = 90.0\ncounter_rise_pct = 900.0\nquantile_shift = 100.0\n",
    )
    .expect("write config");
    let out = report(&[
        "diff",
        path_str(&base),
        path_str(&cand),
        "--config",
        cfg.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));

    // A malformed config is a gate failure (exit 2), with the line named.
    std::fs::write(&cfg, "[diff]\nrate_drop = banana\n").expect("write config");
    let out = report(&[
        "diff",
        path_str(&base),
        path_str(&cand),
        "--config",
        cfg.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
    std::fs::remove_file(&base).expect("cleanup");
    std::fs::remove_file(&cand).expect("cleanup");
    std::fs::remove_file(&cfg).expect("cleanup");
}
