//! End-to-end integration tests over the full pipeline: dataset +
//! simulated Surface Web + simulated Deep-Web sources + acquisition +
//! matching, across all five domains.

use webiq::core::{Components, WebIQConfig};
use webiq::data::kb;
use webiq::matcher::MatchConfig;
use webiq::pipeline::{DomainPipeline, THRESHOLD};

/// The paper's headline: acquired instances lift matching accuracy across
/// the five domains (89.5 % → 97.5 % F-1 average in the paper; shapes, not
/// absolute numbers, must hold here).
#[test]
fn webiq_improves_average_f1_across_domains() {
    let mut base_sum = 0.0;
    let mut webiq_sum = 0.0;
    for def in kb::all_domains() {
        let p = DomainPipeline::from_def(def, 0x1ce0).expect("pipeline");
        let base = p.baseline_f1();
        let webiq = p.webiq_f1(Components::ALL, 0.0).expect("acquisition");
        assert!(
            webiq.f1 >= base.f1 - 0.02,
            "{}: WebIQ must not materially hurt ({:.3} -> {:.3})",
            def.key,
            base.f1,
            webiq.f1
        );
        base_sum += base.f1;
        webiq_sum += webiq.f1;
    }
    let base_avg = base_sum / 5.0;
    let webiq_avg = webiq_sum / 5.0;
    assert!(
        webiq_avg > base_avg + 0.04,
        "average F1 must improve by several points: {base_avg:.3} -> {webiq_avg:.3}"
    );
    assert!(
        base_avg > 0.80 && base_avg < 0.95,
        "baseline in paper's regime: {base_avg:.3}"
    );
    assert!(
        webiq_avg > 0.93,
        "WebIQ average in paper's regime: {webiq_avg:.3}"
    );
}

/// Figure 7's shape: adding components never hurts and each contributes
/// somewhere.
#[test]
fn component_contributions_are_monotone_on_average() {
    let configs = [
        Components::NONE,
        Components::SURFACE,
        Components::SURFACE_DEEP,
        Components::ALL,
    ];
    let mut avgs = Vec::new();
    for components in configs {
        let mut sum = 0.0;
        for def in kb::all_domains() {
            let p = DomainPipeline::from_def(def, 0x1ce0).expect("pipeline");
            sum += if components == Components::NONE {
                p.baseline_f1().f1
            } else {
                p.webiq_f1(components, 0.0).expect("acquisition").f1
            };
        }
        avgs.push(sum / 5.0);
    }
    assert!(
        avgs.windows(2).all(|w| w[1] >= w[0] - 0.015),
        "per-stage averages must be (weakly) increasing: {avgs:?}"
    );
    assert!(
        avgs[3] > avgs[0] + 0.04,
        "full WebIQ clearly beats baseline: {avgs:?}"
    );
}

/// The full pipeline is deterministic in the seed.
#[test]
fn pipeline_is_deterministic() {
    let a = DomainPipeline::build("auto", 42).expect("domain");
    let b = DomainPipeline::build("auto", 42).expect("domain");
    let acq_a = a
        .acquire(Components::ALL, &WebIQConfig::default())
        .expect("acquisition");
    let acq_b = b
        .acquire(Components::ALL, &WebIQConfig::default())
        .expect("acquisition");
    assert_eq!(acq_a.acquired, acq_b.acquired);
    let f1_a = a
        .match_and_evaluate(&a.enriched_attributes(&acq_a), &MatchConfig::default())
        .1;
    let f1_b = b
        .match_and_evaluate(&b.enriched_attributes(&acq_b), &MatchConfig::default())
        .1;
    assert_eq!(f1_a.f1, f1_b.f1);
}

/// Different seeds give different datasets but the qualitative result —
/// WebIQ helps — is seed-robust.
#[test]
fn improvement_is_seed_robust() {
    for seed in [7, 1234] {
        let mut base_sum = 0.0;
        let mut webiq_sum = 0.0;
        for def in kb::all_domains() {
            let p = DomainPipeline::from_def(def, seed).expect("pipeline");
            base_sum += p.baseline_f1().f1;
            webiq_sum += p.webiq_f1(Components::ALL, 0.0).expect("acquisition").f1;
        }
        assert!(
            webiq_sum > base_sum + 0.10,
            "seed {seed}: sum {base_sum:.3} -> {webiq_sum:.3}"
        );
    }
}

/// Thresholding must not collapse accuracy (the paper's third bar).
#[test]
fn thresholding_stays_in_regime() {
    for def in kb::all_domains() {
        let p = DomainPipeline::from_def(def, 0x1ce0).expect("pipeline");
        let webiq = p.webiq_f1(Components::ALL, 0.0).expect("acquisition");
        let webiq_t = p.webiq_f1(Components::ALL, THRESHOLD).expect("acquisition");
        assert!(
            webiq_t.f1 >= webiq.f1 - 0.03,
            "{}: τ must stay within a hair of unthresholded ({:.3} vs {:.3})",
            def.key,
            webiq_t.f1,
            webiq.f1
        );
        assert!(
            webiq_t.precision >= webiq.precision - 1e-9,
            "{}: τ must not lower precision",
            def.key
        );
    }
}

/// Job is the domain with the most instance-poor attributes and (as in the
/// paper) the one where borrowing-based components matter most.
#[test]
fn job_gains_most_from_webiq() {
    let mut gains = Vec::new();
    for def in kb::all_domains() {
        let p = DomainPipeline::from_def(def, 0x1ce0).expect("pipeline");
        let gain = p.webiq_f1(Components::ALL, 0.0).expect("acquisition").f1 - p.baseline_f1().f1;
        gains.push((def.key, gain));
    }
    let max = gains
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("five domains");
    assert_eq!(max.0, "job", "gains: {gains:?}");
}
