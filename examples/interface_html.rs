//! Query interfaces are HTML forms: render the generated airfare dataset
//! to HTML, re-extract every schema from markup (the path a crawler over
//! real Deep-Web sources runs), and match the re-extracted attributes.
//!
//! ```sh
//! cargo run --release --example interface_html
//! ```

use webiq::data::{generate_domain, kb, GenOptions, Interface};
use webiq::html::form::extract_forms;
use webiq::matcher::{match_attributes, MatchAttribute, MatchConfig};

fn main() {
    let def = kb::domain("airfare").expect("airfare is a known domain");
    let ds = generate_domain(def, &GenOptions::default());

    // Render one interface and show the markup round trip.
    let sample = &ds.interfaces[0];
    let html = sample.to_html();
    println!(
        "── {} renders to {} bytes of HTML; first lines:",
        sample.site,
        html.len()
    );
    for line in html.lines().take(6) {
        println!("   {line}");
    }

    // Re-extract every interface from its HTML.
    let mut parsed_interfaces = Vec::new();
    for iface in &ds.interfaces {
        let html = iface.to_html();
        let forms = extract_forms(&html);
        assert_eq!(forms.len(), 1, "each page carries exactly one search form");
        let mut parsed = Interface::from_extracted(iface.id, &iface.domain, &iface.site, &forms[0]);
        parsed.adopt_concepts_from(iface); // restore gold keys for evaluation
        assert_eq!(
            parsed.attributes.len(),
            iface.attributes.len(),
            "lossless round trip"
        );
        parsed_interfaces.push(parsed);
    }
    println!(
        "── re-extracted {} interfaces / {} attributes from HTML",
        parsed_interfaces.len(),
        parsed_interfaces
            .iter()
            .map(|i| i.attributes.len())
            .sum::<usize>()
    );

    // Match the re-extracted schemas (baseline IceQ).
    let attrs: Vec<MatchAttribute> = parsed_interfaces
        .iter()
        .enumerate()
        .flat_map(|(i, iface)| {
            iface
                .attributes
                .iter()
                .enumerate()
                .map(move |(j, a)| MatchAttribute {
                    r: (i, j),
                    label: a.label.clone(),
                    values: a.instances.clone(),
                })
        })
        .collect();
    let result = match_attributes(&attrs, &MatchConfig::default());
    let metrics = result.evaluate(&ds);
    println!(
        "── matching the HTML-extracted schemas: P={:.3} R={:.3} F1={:.1}%",
        metrics.precision,
        metrics.recall,
        metrics.f1_pct()
    );
    println!("   (identical to matching the generated schemas directly — the HTML");
    println!("    path is lossless, as the round-trip property tests guarantee)");
}
