//! The paper's running example (Fig. 1): interface Qa has `Airline` with
//! North-American instances, interface Qb has `Carrier` with European
//! ones. Their labels share no word and their instances barely overlap —
//! the baseline matcher cannot connect them. WebIQ bridges the gap two
//! ways:
//!
//! 1. **Attr-Surface** (§3): borrow `Aer Lingus` from `Carrier` and verify
//!    it for `Airline` with the validation-based naive Bayes classifier.
//! 2. **Attr-Deep** (§4): probe an airfare source with `from = Chicago`
//!    (succeeds) vs. `from = January` (fails).
//!
//! ```sh
//! cargo run --release --example airline_carrier
//! ```

use std::collections::BTreeMap;

use webiq::core::{attr_deep, attr_surface, WebIQConfig};
use webiq::data::{corpus, kb};
use webiq::deep::{analyze_response, DeepSource, ParamDomain, Record, RecordStore, SourceParam};
use webiq::matcher::{match_attributes, MatchAttribute, MatchConfig};
use webiq::web::{gen, GenConfig, SearchEngine};

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| (*s).to_string()).collect()
}

fn main() {
    let def = kb::domain("airfare").expect("airfare is a known domain");
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let cfg = WebIQConfig::default();

    // ── the two attributes of Fig. 1
    let airline_values = strings(&["Air Canada", "American", "Delta", "United"]);
    let carrier_values = strings(&["Aer Lingus", "Lufthansa", "Alitalia", "Iberia"]);

    let baseline = match_attributes(
        &[
            MatchAttribute {
                r: (0, 0),
                label: "Airline".into(),
                values: airline_values.clone(),
            },
            MatchAttribute {
                r: (1, 0),
                label: "Carrier".into(),
                values: carrier_values.clone(),
            },
        ],
        &MatchConfig::default(),
    );
    println!(
        "baseline: Airline and Carrier fall into {} clusters (no shared words, no shared values)",
        baseline.clusters.len()
    );

    // ── Attr-Surface: train the validation-based classifier for Airline.
    // Positives: Airline's own instances. Negatives: instances of the
    // sibling attributes on Qa (Class of service, Departure date, Adults).
    let negatives = strings(&["Economy", "First Class", "Jan", "1"]);
    let classifier = attr_surface::ValidationClassifier::train(
        &engine,
        "Airline",
        &airline_values,
        &negatives,
        &cfg,
    )
    .expect("training succeeds with 4 positives and 4 negatives");
    println!(
        "validation-based classifier trained; thresholds: {:?}",
        classifier.thresholds()
    );

    let mut accepted = Vec::new();
    for candidate in carrier_values.iter().chain(negatives.iter()) {
        let p = classifier.posterior(&engine, candidate, &cfg);
        let verdict = if p > 0.5 {
            "instance"
        } else {
            "not an instance"
        };
        println!("   P(airline | {candidate:12}) = {p:.3} → {verdict}");
        if p > 0.5 {
            accepted.push(candidate.clone());
        }
    }

    // With the borrowed instances added, the matcher connects the pair.
    let mut enriched_airline = airline_values.clone();
    enriched_airline.extend(accepted);
    let enriched = match_attributes(
        &[
            MatchAttribute {
                r: (0, 0),
                label: "Airline".into(),
                values: enriched_airline,
            },
            MatchAttribute {
                r: (1, 0),
                label: "Carrier".into(),
                values: carrier_values,
            },
        ],
        &MatchConfig::default(),
    );
    println!(
        "after Attr-Surface borrowing: {} cluster(s) — Airline ≡ Carrier {}",
        enriched.clusters.len(),
        if enriched.clusters.len() == 1 {
            "✓"
        } else {
            "✗"
        }
    );

    // ── Attr-Deep: the `from = Chicago` vs `from = January` probe (§4).
    let source = airfare_source();
    for value in ["Chicago", "January"] {
        let mut params = BTreeMap::new();
        params.insert("from".to_string(), value.to_string());
        let outcome = analyze_response(&source.submit(&params));
        println!("probe from={value:8} → {outcome:?}");
    }
    let months = strings(&["January", "February", "March"]);
    let cities = strings(&["Chicago", "Boston", "Seattle"]);
    let cities_ok = attr_deep::validate_borrowed(&source, "from", &cities, &cfg);
    let months_ok = attr_deep::validate_borrowed(&source, "from", &months, &cfg);
    println!(
        "Attr-Deep verdicts: cities accepted={} ({}/{} probes ok), months accepted={} ({}/{})",
        cities_ok.accepted,
        cities_ok.successes,
        cities_ok.probed,
        months_ok.accepted,
        months_ok.successes,
        months_ok.probed,
    );
}

/// A small airfare source whose backend knows city origins.
fn airfare_source() -> DeepSource {
    let cities = ["Chicago", "Boston", "Seattle", "Denver", "Atlanta"];
    let mut store = RecordStore::default();
    for (i, from) in cities.iter().enumerate() {
        store.push(Record::new([
            ("from", *from),
            ("to", cities[(i + 2) % cities.len()]),
            ("airline", "United"),
        ]));
    }
    DeepSource::new(
        "SkyQuest Travel",
        vec![
            SourceParam {
                name: "from".into(),
                domain: ParamDomain::Free,
                required: false,
            },
            SourceParam {
                name: "to".into(),
                domain: ParamDomain::Free,
                required: false,
            },
        ],
        store,
    )
}
