//! Warm start: run acquisition twice through a crash-safe persistent
//! store and watch the second run replay from disk — byte-identical
//! instances, near-zero engine traffic.
//!
//! ```sh
//! cargo run --release --example warm_start
//! ```

use std::sync::Arc;

use webiq::core::{Components, WebIQConfig};
use webiq::pipeline::DomainPipeline;
use webiq::store::Store;
use webiq::trace::Counter;

/// Engine queries issued by this thread so far (the warm path never
/// spawns workers, so its delta is fully visible here).
fn engine_queries() -> u64 {
    let m = webiq::trace::snapshot();
    m.get(Counter::EngineSearchIssued) + m.get(Counter::EngineHitIssued)
}

fn main() {
    let pipeline = DomainPipeline::build("book", 0x1ce0).expect("book is a known domain");
    let dir = std::env::temp_dir().join(format!("webiq-warm-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold run: acquire from the simulated Web, persisting every merged
    // item through the store's checksummed append log. Single-threaded
    // so the engine counters land on this thread.
    let store = Arc::new(Store::open(&dir).expect("store opens"));
    let cfg = WebIQConfig {
        threads: Some(1),
        store: Some(Arc::clone(&store)),
        ..WebIQConfig::default()
    };
    let before = engine_queries();
    let cold = pipeline
        .acquire(Components::ALL, &cfg)
        .expect("cold acquisition");
    let cold_queries = engine_queries() - before;
    println!(
        "cold run: {} attributes enriched, {} facts persisted, {cold_queries} engine queries",
        cold.acquired.len(),
        store.state_snapshot().len(),
    );
    drop(cfg);
    drop(store);

    // Warm run: a fresh handle recovers the store from disk, finds the
    // completed run's commit marker under the identical input
    // fingerprint, and replays it without touching the engine.
    let store = Arc::new(Store::open(&dir).expect("store reopens"));
    let warm_cfg = WebIQConfig {
        threads: Some(1),
        store: Some(store),
        ..WebIQConfig::default()
    };
    let before = engine_queries();
    let warm = pipeline
        .acquire(Components::ALL, &warm_cfg)
        .expect("warm acquisition");
    let warm_queries = engine_queries() - before;
    println!(
        "warm run: {} attributes enriched, {warm_queries} engine queries",
        warm.acquired.len(),
    );

    println!(
        "engine-query delta: {cold_queries} cold -> {warm_queries} warm \
         ({} saved); instances byte-identical: {}",
        cold_queries - warm_queries,
        warm.acquired == cold.acquired,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
