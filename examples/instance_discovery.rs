//! Walk through the Surface component (§2 of the paper) step by step for
//! attribute labels of different syntactic forms — the pipeline of Fig. 3:
//! label analysis → extraction queries → snippets → candidates → outlier
//! removal → Web validation.
//!
//! ```sh
//! cargo run --release --example instance_discovery
//! ```

use webiq::core::extract::{self, DomainInfo};
use webiq::core::{patterns, surface, verify, WebIQConfig};
use webiq::data::{corpus, kb};
use webiq::nlp::{classify_label, LabelForm};
use webiq::web::{gen, GenConfig, SearchEngine};

fn main() {
    let def = kb::domain("airfare").expect("airfare is a known domain");
    let engine = SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine");
    let info = DomainInfo {
        object: def.object.to_string(),
        domain_terms: def.domain_terms.iter().map(|s| (*s).to_string()).collect(),
        sibling_terms: Vec::new(),
    };
    let cfg = WebIQConfig::default();

    for label in [
        "Departure city",
        "From city",
        "From",
        "Depart from",
        "Class of service",
    ] {
        println!("── label: {label:?}");

        // 1. shallow syntactic analysis (§2.1)
        let form = classify_label(label);
        let form_name = match &form {
            LabelForm::NounPhrase(_) => "noun phrase",
            LabelForm::PrepPhrase { .. } => "prepositional phrase",
            LabelForm::VerbPhrase { .. } => "verb phrase",
            LabelForm::Conjunction(_) => "noun-phrase conjunction",
            LabelForm::Other => "other",
        };
        println!("   syntactic form: {form_name}");
        let nps = extract::label_noun_phrases(label);
        if nps.is_empty() {
            println!("   no noun phrase → extraction terminates (instances must be borrowed)");
            continue;
        }

        // 2. extraction queries from the Fig. 4 patterns
        let np = &nps[0];
        println!(
            "   noun phrase: {:?} (plural: {:?})",
            np.text(),
            np.plural_text()
        );
        for pattern in extract_patterns_preview(np, &info, &cfg) {
            println!("   query: {pattern}");
        }

        // 3–4. pose queries, extract candidates
        let outcome = extract::extract_candidates(&engine, label, &info, &cfg);
        println!(
            "   {} extraction queries → {} distinct candidates",
            outcome.queries,
            outcome.candidates.len()
        );

        // 5–6. verification: outliers, then PMI-based Web validation
        let result = surface::discover(&engine, label, &info, &cfg);
        println!(
            "   verification removed {} outliers, {} by Web validation",
            result.outliers_removed, result.validation_removed
        );
        for inst in result.instances.iter().take(5) {
            println!("   ✓ {:20} score {:.5}", inst.text, inst.score);
        }
        if result.instances.len() > 5 {
            println!("   … and {} more", result.instances.len() - 5);
        }
    }

    // Show a validation-score comparison like §2.2's make/Honda example.
    println!("── validation scores for label \"Airline\"");
    let np = extract::primary_noun_phrase("Airline").expect("noun label");
    let phrases = patterns::validation_phrases("Airline", Some(&np));
    for candidate in ["Delta", "Aer Lingus", "Economy", "Jan"] {
        let score = verify::confidence(&engine, &phrases, candidate, true);
        println!("   PMI({candidate:12}) = {score:.6}");
    }
}

/// Render the first few extraction queries for display.
fn extract_patterns_preview(
    np: &webiq::nlp::NounPhrase,
    info: &DomainInfo,
    cfg: &WebIQConfig,
) -> Vec<String> {
    patterns::extraction_patterns(np, &info.object)
        .iter()
        .take(3)
        .map(|p| extract::build_query(p, info, cfg))
        .collect()
}
