//! Quickstart: match the book domain's 20 query interfaces with and
//! without WebIQ instance acquisition.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use webiq::core::{Components, WebIQConfig};
use webiq::matcher::MatchConfig;
use webiq::pipeline::{DomainPipeline, THRESHOLD};

fn main() {
    let pipeline = DomainPipeline::build("book", 0x1ce0).expect("book is a known domain");
    println!(
        "dataset: {} interfaces, {} attributes ({} without instances)",
        pipeline.dataset.interfaces.len(),
        pipeline.dataset.attr_count(),
        pipeline
            .dataset
            .interfaces
            .iter()
            .map(webiq::data::Interface::attrs_without_instances)
            .sum::<usize>(),
    );
    println!(
        "simulated Surface Web: {} pages",
        pipeline.engine.doc_count()
    );

    // Baseline: IceQ on labels + pre-defined instances only.
    let baseline = pipeline.baseline_f1();
    println!(
        "baseline IceQ:        P={:.3} R={:.3} F1={:.1}%",
        baseline.precision,
        baseline.recall,
        baseline.f1_pct()
    );

    // Full WebIQ: Surface discovery + Deep-validated and Surface-validated
    // borrowing, then matching over the enriched attributes.
    let acq = pipeline
        .acquire(Components::ALL, &WebIQConfig::default())
        .expect("acquisition");
    println!(
        "acquisition: {}/{} instance-less attributes reached k=10 \
         (Surface alone: {}), {} pre-defined attributes enriched",
        acq.report.surface_deep_success,
        acq.report.no_inst_attrs,
        acq.report.surface_success,
        acq.report.attr_surface_enriched,
    );

    let attrs = pipeline.enriched_attributes(&acq);
    let (_, webiq) = pipeline.match_and_evaluate(&attrs, &MatchConfig::default());
    let (_, webiq_t) = pipeline.match_and_evaluate(&attrs, &MatchConfig::with_threshold(THRESHOLD));
    println!(
        "IceQ + WebIQ:         P={:.3} R={:.3} F1={:.1}%",
        webiq.precision,
        webiq.recall,
        webiq.f1_pct()
    );
    println!(
        "IceQ + WebIQ + thr.:  P={:.3} R={:.3} F1={:.1}%",
        webiq_t.precision,
        webiq_t.recall,
        webiq_t.f1_pct()
    );
}
