//! §8 of the paper: "our future work will study how to transfer our
//! techniques to other contexts, such as … schema matching and record
//! linkage."
//!
//! This example runs that transfer: two *relational* schemas (no query
//! interfaces, no Deep Web) whose columns partially lack data samples are
//! matched with the same machinery — Surface-Web instance discovery for
//! the empty columns, then label+domain similarity clustering. The
//! "Surface Web" here is a handful of pages about the publishing domain.

use webiq::core::{surface, DomainInfo, WebIQConfig};
use webiq::matcher::{match_attributes, MatchAttribute, MatchConfig};
use webiq::web::{Corpus, SearchEngine};

/// One relational column: name + sampled values (possibly none).
struct Column {
    name: &'static str,
    samples: Vec<String>,
}

fn schema_a() -> Vec<Column> {
    vec![
        Column {
            name: "title",
            samples: strings(&["The Firm", "Dune", "Emma"]),
        },
        Column {
            name: "writer",
            samples: vec![],
        }, // no data sampled
        Column {
            name: "publisher",
            samples: strings(&["Penguin", "Vintage"]),
        },
        Column {
            name: "price_usd",
            samples: strings(&["$10", "$25"]),
        },
    ]
}

fn schema_b() -> Vec<Column> {
    vec![
        Column {
            name: "book_name",
            samples: strings(&["Dune", "Congo", "It"]),
        },
        Column {
            name: "author",
            samples: strings(&["Stephen King", "John Grisham"]),
        },
        Column {
            name: "publishing_house",
            samples: vec![],
        }, // no data sampled
        Column {
            name: "cost",
            samples: strings(&["$12", "$30"]),
        },
    ]
}

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| (*s).to_string()).collect()
}

/// A tiny "Surface Web" about books.
fn book_web() -> SearchEngine {
    SearchEngine::new(Corpus::from_texts([
        "Famous writers such as Stephen King, John Grisham, and Mark Twain. books",
        "We stock such writers as Agatha Christie and Isaac Asimov. books",
        "Stephen King is the writer of many bestsellers. books",
        "Publishing houses such as Penguin, Vintage, and Knopf. books",
        "such publishing houses as Random House and Doubleday print classics. books",
        "Writer: Stephen King. Title: It.",
        "Publishing house: Penguin.",
        "A noise page about gardening and recipes.",
    ]))
    .expect("engine")
}

fn main() {
    let engine = book_web();
    let info = DomainInfo {
        object: "book".into(),
        domain_terms: vec!["books".into()],
        sibling_terms: Vec::new(),
    };
    let cfg = WebIQConfig {
        k: 4,
        ..WebIQConfig::default()
    };

    // Enrich the empty columns from the (simulated) Web, exactly as WebIQ
    // enriches instance-less interface attributes.
    let mut attrs: Vec<MatchAttribute> = Vec::new();
    for (iface, schema) in [(0usize, schema_a()), (1, schema_b())] {
        for (j, col) in schema.into_iter().enumerate() {
            let mut values = col.samples;
            if values.is_empty() {
                let label = col.name.replace('_', " ");
                let found = surface::discover(&engine, &label, &info, &cfg);
                println!(
                    "column {:<20} had no data → acquired {:?}",
                    format!("{}(schema {})", col.name, iface),
                    found.texts()
                );
                values = found.texts();
            }
            attrs.push(MatchAttribute {
                r: (iface, j),
                label: col.name.replace('_', " "),
                values,
            });
        }
    }

    let result = match_attributes(&attrs, &MatchConfig::default());
    println!("\ncolumn correspondences:");
    for cluster in &result.clusters {
        if cluster.len() < 2 {
            continue;
        }
        let names: Vec<&str> = cluster
            .iter()
            .map(|r| {
                attrs
                    .iter()
                    .find(|a| a.r == *r)
                    .expect("attr exists")
                    .label
                    .as_str()
            })
            .collect();
        println!("   {} ≡ {}", names[0], names[1..].join(" ≡ "));
    }

    // The pair the labels alone could never connect:
    let writer = attrs
        .iter()
        .position(|a| a.label == "writer")
        .expect("writer");
    let author = attrs
        .iter()
        .position(|a| a.label == "author")
        .expect("author");
    let same_cluster = result
        .clusters
        .iter()
        .any(|c| c.contains(&attrs[writer].r) && c.contains(&attrs[author].r));
    println!(
        "\nwriter ≡ author (zero label overlap, bridged by acquired instances): {}",
        if same_cluster { "✓" } else { "✗" }
    );
}
