//! Interactive threshold learning — the part of IceQ the paper ran in
//! manual mode ("we employ only the automatic version of IceQ, and set
//! the threshold manually" to 0.1, "about the average of the thresholds
//! learned for the five domains").
//!
//! This example replays that learning: a gold-standard-backed oracle
//! stands in for the interactive user, answers 20 match/no-match
//! questions per domain about actual merge decisions, and the
//! information-gain threshold estimator (the same one the §3 classifier
//! uses) produces each domain's τ.
//!
//! ```sh
//! cargo run --release --example threshold_learning
//! ```

use webiq::core::{Components, WebIQConfig};
use webiq::data::{gold, kb};
use webiq::matcher::{learn_threshold, GoldOracle, MatchConfig};
use webiq::pipeline::DomainPipeline;

fn main() {
    println!("domain       learned-τ  questions  F1@τ=0  F1@learned-τ");
    let mut sum = 0.0;
    for def in kb::all_domains() {
        let p = DomainPipeline::from_def(def, 0x1ce0).expect("pipeline");
        let acq = p
            .acquire(Components::ALL, &WebIQConfig::default())
            .expect("acquisition");
        let attrs = p.enriched_attributes(&acq);

        let mut oracle = GoldOracle::new(gold::gold_pairs(&p.dataset));
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 20);

        let f1_zero = p.match_and_evaluate(&attrs, &MatchConfig::default()).1;
        let f1_learned = p
            .match_and_evaluate(&attrs, &MatchConfig::with_threshold(learned.threshold))
            .1;
        println!(
            "{:<12} {:>9.4} {:>10} {:>7.1} {:>13.1}",
            def.display,
            learned.threshold,
            learned.questions,
            f1_zero.f1_pct(),
            f1_learned.f1_pct(),
        );
        sum += learned.threshold;
    }
    println!(
        "\naverage learned τ = {:.3} — the paper set its manual τ = 0.1 as \"about the\n\
         average of the thresholds learned for the five domains\" on IceQ's scale.",
        sum / 5.0
    );
}
