//! Explain one attribute's journey: from raw PMI evidence on each
//! extracted instance, through verification, to its final cluster
//! placement — entirely from the decision-provenance trace.
//!
//! ```sh
//! cargo run --release --example explain_decision
//! ```

use webiq::core::{Components, WebIQConfig};
use webiq::matcher::MatchConfig;
use webiq::pipeline::{DomainPipeline, THRESHOLD};
use webiq::trace::{Event, SharedBuf, Tracer};
use webiq::why::Provenance;

fn main() {
    // One fully-traced run: acquisition records instance/borrow/probe
    // decisions, the traced matching pass records cluster merges.
    let pipeline = DomainPipeline::build("book", 0x1ce0).expect("book is a known domain");
    let buf = SharedBuf::new();
    let tracer = Tracer::jsonl(Box::new(buf.clone()));
    let cfg = WebIQConfig {
        tracer: tracer.clone(),
        ..WebIQConfig::default()
    };
    let acq = pipeline
        .acquire(Components::ALL, &cfg)
        .expect("acquisition");
    let attrs = pipeline.enriched_attributes(&acq);
    let (_, metrics) = pipeline.match_and_evaluate_traced(
        &attrs,
        &MatchConfig::with_threshold(THRESHOLD),
        &tracer,
    );
    tracer.flush();

    let events: Vec<Event> = buf
        .contents_string()
        .lines()
        .filter_map(Event::parse)
        .collect();
    let prov = Provenance::from_events(&events);
    println!(
        "traced run: {} events, {} decisions, final F1 {:.1}%\n",
        events.len(),
        prov.decisions().len(),
        metrics.f1_pct()
    );

    // Pick the first attribute that had an instance validated — the
    // start of the evidence chain the paper's §2.2 describes.
    let first = prov
        .decisions()
        .iter()
        .find(|d| d.kind == "instance_validate")
        .expect("the book run validates instances");
    let attr = prov.owner_attr(first);
    println!("following attribute {attr}:\n");

    // 1. Raw PMI evidence: why each extracted candidate was kept or
    //    dropped (hit counts, per-phrase PMI, score vs threshold).
    println!("-- step 1: instance validation (PMI over hit counts) --");
    print!("{}", prov.explain(&attr));

    // 2. Cluster placement: the merges the enriched attribute took part
    //    in, with the label/domain similarity components behind each.
    println!("-- step 2: cluster placement for label \"{attr}\" --");
    let merges: Vec<_> = prov
        .decisions()
        .iter()
        .filter(|d| d.kind == "cluster_merge" && d.subject.contains(attr.as_str()))
        .collect();
    if merges.is_empty() {
        println!("no merges involve \"{attr}\" (it stayed a singleton)");
    }
    for m in merges {
        println!("merge {} at:", m.subject);
        for (name, v) in &m.terms {
            println!("  {name:<10} {v}");
        }
    }
}
